// Ablation: encoding choices for LMKG-S (paper §V / §VII-B discussion):
//   * one-hot vs binary term encoding (binary is the paper's choice for
//     heterogeneous KGs: far smaller input dimensionality),
//   * pattern-bound vs SG-Encoding (pattern-bound is per-shape; SG serves
//     all topologies in one model).
// Reports accuracy, input width and model size on star-2 queries.
#include <iostream>

#include "core/lmkg_s.h"
#include "data/dataset.h"
#include "encoding/query_encoder.h"
#include "eval/suite.h"
#include "sampling/workload.h"
#include "util/math.h"
#include "util/strings.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace lmkg;
  using query::Topology;
  eval::SuiteOptions options = eval::SuiteOptionsFromFlags(argc, argv);
  std::cout << "Ablation: LMKG-S encodings (swdf profile, scale="
            << options.dataset_scale << ")\n\n";

  rdf::Graph graph =
      data::MakeDataset("swdf", options.dataset_scale, options.seed);
  std::cerr << "[ablation] " << rdf::GraphSummary(graph) << "\n";

  sampling::WorkloadGenerator generator(graph);
  sampling::WorkloadGenerator::Options wopts;
  wopts.topology = Topology::kStar;
  wopts.query_size = 2;
  wopts.max_cardinality = options.max_cardinality;
  wopts.count = options.train_queries_per_combo;
  wopts.seed = options.seed + 1;
  auto train = generator.Generate(wopts);
  wopts.count = options.test_queries_per_combo;
  wopts.seed = options.seed + 2;
  auto test = generator.Generate(wopts);

  struct Candidate {
    std::string label;
    std::unique_ptr<encoding::QueryEncoder> encoder;
  };
  std::vector<Candidate> candidates;
  candidates.push_back({"pattern-bound binary",
                        encoding::MakeStarEncoder(
                            graph, 2, encoding::TermEncoding::kBinary)});
  candidates.push_back({"pattern-bound one-hot",
                        encoding::MakeStarEncoder(
                            graph, 2, encoding::TermEncoding::kOneHot)});
  candidates.push_back({"SG binary",
                        encoding::MakeSgEncoder(
                            graph, 3, 2, encoding::TermEncoding::kBinary)});

  util::TablePrinter table("LMKG-S with different encodings (star-2)");
  table.SetHeader({"encoding", "input width", "model bytes",
                   "avg q-error", "median", "p95", "train s"});
  for (auto& candidate : candidates) {
    std::cerr << "[ablation] training with " << candidate.label << "...\n";
    core::LmkgSConfig config;
    config.hidden_dim = options.s_hidden_dim;
    config.epochs = options.s_epochs;
    config.seed = options.seed + 5;
    size_t width = candidate.encoder->width();
    core::LmkgS model(std::move(candidate.encoder), config);
    auto stats = model.Train(train);
    std::vector<double> qerrors;
    for (const auto& lq : test)
      qerrors.push_back(util::QError(model.EstimateCardinality(lq.query),
                                     lq.cardinality));
    util::QErrorStats qstats = util::QErrorStats::Compute(qerrors);
    table.AddRow({candidate.label, std::to_string(width),
                  util::HumanBytes(model.MemoryBytes()),
                  util::FormatValue(qstats.mean),
                  util::FormatValue(qstats.median),
                  util::FormatValue(qstats.p95),
                  util::FormatValue(stats.seconds)});
  }
  table.Print(std::cout);
  std::cout << "\nExpected: one-hot blows up the input width (and model "
               "size) without an accuracy win — the paper's rationale for "
               "binary encoding on heterogeneous KGs. SG costs a little "
               "width over pattern-bound but serves every topology.\n";
  return 0;
}
