// Serving-throughput benchmark for the batched estimation pipeline: how
// many estimates per second LMKG-S sustains when queries flow through
// EstimateCardinalityBatch at batch sizes {1, 8, 64, 512}, against the
// per-query EstimateCardinality path — the deployment shape of a query
// optimizer pricing many candidate plans per query. Emits the measured
// throughputs as BENCH_batch_inference.json so successive commits can
// track the serving baseline.
//
// Beyond raw queries/sec, an instrumented sweep splits each batch size
// into per-stage timings (encode vs forward, LmkgS::StageStats) and
// counts heap allocations per query via a global operator-new hook — the
// two quantities the allocation-free + SIMD hot-path work optimizes, so
// regressions in either are visible in the JSON, not just in the
// aggregate.
//
// Flags: the common suite flags (--scale, --seed, ...) plus
//   --rounds=N   full passes over the workload per timing (default 3)
//   --repeats=N  independent timings per batch size; the best is
//                reported (default 5 — throughput is noise-floored, so
//                max filters scheduler interference)
//   --out=PATH   JSON output path (default BENCH_batch_inference.json)
#include <fstream>
#include <iostream>
#include <span>
#include <vector>

// Global operator new/delete replacements counting every heap allocation
// made by this binary (all forms the library uses, including the
// align_val_t overloads behind nn::Matrix's cache-aligned storage).
#define LMKG_ENABLE_ALLOC_COUNT_HOOKS
#include "util/alloc_hooks.h"

#include "core/lmkg_s.h"
#include "data/dataset.h"
#include "encoding/query_encoder.h"
#include "eval/suite.h"
#include "util/flags.h"
#include "util/stopwatch.h"
#include "util/strings.h"
#include "util/table.h"

namespace {

using namespace lmkg;

// Queries/sec of one timed sweep: `rounds` passes over the workload in
// chunks of `batch_size` through the batch API.
double MeasureBatched(core::LmkgS* model,
                      const std::vector<query::Query>& queries,
                      std::vector<double>* out, size_t batch_size,
                      int rounds) {
  util::Stopwatch timer;
  for (int round = 0; round < rounds; ++round) {
    for (size_t start = 0; start < queries.size(); start += batch_size) {
      const size_t count = std::min(batch_size, queries.size() - start);
      model->EstimateCardinalityBatch(
          std::span<const query::Query>(queries).subspan(start, count),
          std::span<double>(*out).subspan(start, count));
    }
  }
  const double seconds = timer.ElapsedSeconds();
  return static_cast<double>(queries.size()) * rounds / seconds;
}

// Queries/sec of the per-query virtual call, the pre-batching serving path.
double MeasurePerQuery(core::LmkgS* model,
                       const std::vector<query::Query>& queries,
                       std::vector<double>* out, int rounds) {
  util::Stopwatch timer;
  for (int round = 0; round < rounds; ++round)
    for (size_t i = 0; i < queries.size(); ++i)
      (*out)[i] = model->EstimateCardinality(queries[i]);
  const double seconds = timer.ElapsedSeconds();
  return static_cast<double>(queries.size()) * rounds / seconds;
}

// Per-stage timings and allocation counts of one instrumented sweep at
// `batch_size` (separate from the throughput timings so the stopwatch
// reads don't pollute those).
struct StageProfile {
  double encode_us_per_query = 0.0;
  double forward_us_per_query = 0.0;
  double allocs_per_query = 0.0;
};

StageProfile ProfileBatched(core::LmkgS* model,
                            const std::vector<query::Query>& queries,
                            std::vector<double>* out, size_t batch_size,
                            int rounds) {
  model->ResetStageStats();
  model->set_collect_stage_stats(true);
  const size_t allocs_before =
      util::AllocationCount();
  MeasureBatched(model, queries, out, batch_size, rounds);
  const size_t allocs =
      util::AllocationCount() - allocs_before;
  model->set_collect_stage_stats(false);
  const core::LmkgS::StageStats& stats = model->stage_stats();
  StageProfile profile;
  const double queries_timed =
      static_cast<double>(std::max<size_t>(stats.queries, 1));
  profile.encode_us_per_query = stats.encode_seconds * 1e6 / queries_timed;
  profile.forward_us_per_query =
      stats.forward_seconds * 1e6 / queries_timed;
  profile.allocs_per_query = static_cast<double>(allocs) / queries_timed;
  return profile;
}

}  // namespace

int main(int argc, char** argv) {
  using query::Topology;
  eval::SuiteOptions options = eval::SuiteOptionsFromFlags(argc, argv);
  util::Flags flags(argc, argv);
  const int rounds = static_cast<int>(flags.GetInt("rounds", 3));
  const int repeats = static_cast<int>(flags.GetInt("repeats", 5));
  const std::string out_path =
      flags.GetString("out", "BENCH_batch_inference.json");
  const std::vector<size_t> batch_sizes = {1, 8, 64, 512};

  rdf::Graph graph =
      data::MakeDataset("swdf", options.dataset_scale, options.seed);
  std::cerr << "[throughput] " << rdf::GraphSummary(graph) << "\n";

  // One LMKG-S over SG-Encoding (the paper's main configuration) sized to
  // the suite's largest query size, trained on a generated star+chain
  // workload — the model whose forward pass the batch pipeline feeds.
  const int max_size = options.query_sizes.back();
  core::LmkgSConfig config;
  config.hidden_dim = options.s_hidden_dim;
  config.epochs = std::min(options.s_epochs, 10);  // accuracy is not measured
  config.seed = options.seed;
  core::LmkgS model(
      encoding::MakeSgEncoder(graph, max_size + 1, max_size,
                              encoding::TermEncoding::kBinary),
      config);

  sampling::WorkloadGenerator generator(graph);
  std::vector<sampling::LabeledQuery> train;
  std::vector<query::Query> workload;
  size_t combo = 0;
  for (Topology topology : {Topology::kStar, Topology::kChain}) {
    for (int size : options.query_sizes) {
      sampling::WorkloadGenerator::Options wopts;
      wopts.topology = topology;
      wopts.query_size = size;
      wopts.max_cardinality = options.max_cardinality;
      wopts.count = options.train_queries_per_combo;
      wopts.seed = options.seed + 7919 * combo + 1;
      auto labeled = generator.Generate(wopts);
      train.insert(train.end(), labeled.begin(), labeled.end());
      wopts.count = options.test_queries_per_combo;
      wopts.seed = options.seed + 7919 * combo + 104729;
      for (auto& lq : generator.Generate(wopts))
        workload.push_back(std::move(lq.query));
      ++combo;
    }
  }
  std::cerr << "[throughput] training LMKG-S on " << train.size()
            << " queries...\n";
  model.Train(train);
  std::cerr << "[throughput] timing " << workload.size() << " queries x "
            << rounds << " rounds\n";

  std::vector<double> estimates(workload.size(), 0.0);
  // Warm-up pass so allocations and page faults don't bias the first row.
  MeasureBatched(&model, workload, &estimates, 64, 1);

  // Best of `repeats` timings per configuration: throughput has a hard
  // ceiling and only slows down under interference, so max is the robust
  // statistic on shared machines.
  double per_query_qps = 0.0;
  for (int r = 0; r < repeats; ++r)
    per_query_qps = std::max(
        per_query_qps, MeasurePerQuery(&model, workload, &estimates, rounds));
  std::vector<double> batched_qps(batch_sizes.size(), 0.0);
  for (int r = 0; r < repeats; ++r)
    for (size_t i = 0; i < batch_sizes.size(); ++i)
      batched_qps[i] = std::max(
          batched_qps[i],
          MeasureBatched(&model, workload, &estimates, batch_sizes[i],
                         rounds));

  // Instrumented sweep: encode/forward split + allocations per query.
  std::vector<StageProfile> profiles(batch_sizes.size());
  for (size_t i = 0; i < batch_sizes.size(); ++i)
    profiles[i] = ProfileBatched(&model, workload, &estimates,
                                 batch_sizes[i], rounds);

  util::TablePrinter table(util::StrFormat(
      "LMKG-S serving throughput (queries/sec, simd=%s)",
      nn::SimdIsaName()));
  table.SetHeader({"path", "qps", "speedup vs per-query", "encode us/q",
                   "forward us/q", "allocs/q"});
  table.AddRow("per-query", {per_query_qps, 1.0, 0.0, 0.0, 0.0});
  for (size_t i = 0; i < batch_sizes.size(); ++i) {
    table.AddRow(util::StrFormat("batch-%zu", batch_sizes[i]),
                 {batched_qps[i], batched_qps[i] / per_query_qps,
                  profiles[i].encode_us_per_query,
                  profiles[i].forward_us_per_query,
                  profiles[i].allocs_per_query});
  }
  table.Print(std::cout);

  std::ofstream json(out_path);
  json << "{\n"
       << "  \"bench\": \"batch_inference\",\n"
       << "  \"estimator\": \"LMKG-S\",\n"
       << "  \"dataset\": \"swdf\",\n"
       << "  \"simd_isa\": \"" << nn::SimdIsaName() << "\",\n"
       << "  \"scale\": " << options.dataset_scale << ",\n"
       << "  \"queries\": " << workload.size() << ",\n"
       << "  \"rounds\": " << rounds << ",\n"
       << "  \"per_query_qps\": " << per_query_qps << ",\n"
       << "  \"batched\": [\n";
  for (size_t i = 0; i < batch_sizes.size(); ++i) {
    json << "    {\"batch_size\": " << batch_sizes[i]
         << ", \"qps\": " << batched_qps[i]
         << ", \"encode_us_per_query\": "
         << profiles[i].encode_us_per_query
         << ", \"forward_us_per_query\": "
         << profiles[i].forward_us_per_query
         << ", \"allocs_per_query\": " << profiles[i].allocs_per_query
         << "}" << (i + 1 < batch_sizes.size() ? ",\n" : "\n");
  }
  auto qps_at = [&](size_t batch_size) {
    for (size_t i = 0; i < batch_sizes.size(); ++i)
      if (batch_sizes[i] == batch_size) return batched_qps[i];
    return 0.0;
  };
  json << "  ],\n"
       << "  \"speedup_batch64_vs_batch1\": "
       << qps_at(64) / qps_at(1) << "\n"
       << "}\n";
  std::cout << "\nwrote " << out_path << "\n";
  return 0;
}
