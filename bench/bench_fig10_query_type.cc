// Fig. 10: accuracy (avg q-error) for star vs chain queries across the
// datasets (SWDF, LUBM, YAGO; LMKG-U excluded for YAGO as in the paper).
#include <iostream>

#include "data/dataset.h"
#include "eval/comparison.h"
#include "eval/suite.h"
#include "util/flags.h"
#include "util/strings.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace lmkg;
  using query::Topology;
  eval::SuiteOptions options = eval::SuiteOptionsFromFlags(argc, argv);
  util::Flags flags(argc, argv);
  // Default: SWDF only; --datasets=swdf,lubm,yago reproduces the paper's
  // full figure (slow on one core).
  auto datasets = util::Split(flags.GetString("datasets", "swdf"), ',');
  std::cout << "Fig. 10: avg q-error for star vs chain queries (scale="
            << options.dataset_scale << ")\n\n";

  for (const std::string& name : datasets) {
    rdf::Graph graph =
        data::MakeDataset(name, options.dataset_scale, options.seed);
    std::cerr << "[fig10] " << name << ": " << rdf::GraphSummary(graph)
              << "\n";
    bool include_u = name != "yago";
    eval::ComparisonResult comparison =
        eval::RunComparison(graph, options, include_u);

    util::TablePrinter table("avg q-error by query type — " + name +
                             (include_u ? "" : " (no LMKG-U)"));
    table.SetHeader({"estimator", "star", "chain"});
    for (size_t e = 0; e < comparison.estimator_names.size(); ++e) {
      std::vector<double> row;
      for (Topology topology : {Topology::kStar, Topology::kChain}) {
        std::vector<double> qerrors;
        for (size_t c = 0; c < comparison.test.combos.size(); ++c) {
          if (comparison.test.combos[c].first != topology) continue;
          const auto& cell = comparison.cells[e][c];
          qerrors.insert(qerrors.end(), cell.qerrors.begin(),
                         cell.qerrors.end());
        }
        row.push_back(eval::MeanOf(qerrors));
      }
      table.AddRow(comparison.estimator_names[e], row);
    }
    table.Print(std::cout);
    std::cout << "\n";
  }
  std::cout << "Paper shape: LMKG-S and LMKG-U are best for both types; "
               "wj and mscn-1k are the strongest competitors and "
               "occasionally pass LMKG-U.\n";
  return 0;
}
