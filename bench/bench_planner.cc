// Planner benchmark: DP join enumeration over an LUBM star/chain
// workload, pricing every connected sub-plan through the LMKG-S serving
// stack — the optimizer-in-the-loop shape the planner subsystem was
// built for (paper §I: accurate cardinality estimates exist to make
// plans cheap).
//
// Throughput track (gated): three pricing regimes over the same
// workload and the same DP enumeration, best of --repeats timings:
//   naive       one blocking service Estimate per sub-plan, no memo, no
//               result cache — the literal pre-planner access pattern
//               (what examples/join_order_advisor.cpp used to do per
//               permutation prefix)
//   cold        production config with the memo cleared every pass:
//               subset fingerprinting + bulk EstimateBatch fan-out;
//               reports subplans priced/sec, the raw pricing bandwidth
//   warm        production config, memo populated: the steady state of
//               an optimizer replanning a stable workload
// CI gates plans_per_sec (warm) against
// bench/baselines/planner_baseline_{N}core.json and enforces the hard
// floor batched_vs_naive_speedup >= 5 via
// scripts/check_bench_regression.py.
//
// Plan-quality track: for a sample of the workload, plans chosen with
// LMKG-S, independence, and CSET(+independence fallback) estimates are
// re-costed with TRUE cardinalities (query::Executor) and compared to
// the true optimum (the same DP run with an exact-counting
// OracleSource). Reported as geometric-mean true-cost overhead vs
// optimal; the LMKG column must not exceed the independence column.
//
// Flags: the common suite flags (--scale, --seed, ...) plus
//   --repeats=N   independent timings per regime; best is reported
//                 (default 3)
//   --rounds=N    workload passes per timing (default 2)
//   --shards=N    serving shards (default 0 = one per hardware thread)
//   --quality=N   queries in the plan-quality sample (default 30)
//   --smoke       CI-sized run: scale 0.01, sizes {3,4}, 24
//                 queries/combo, 12-query quality sample
//   --out=PATH    JSON output path (default BENCH_planner.json)
#include <algorithm>
#include <cmath>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "baselines/cset.h"
#include "baselines/independence.h"
#include "core/lmkg_s.h"
#include "data/dataset.h"
#include "encoding/query_encoder.h"
#include "eval/suite.h"
#include "nn/tensor.h"
#include "planner/planner.h"
#include "query/executor.h"
#include "serving/estimator_service.h"
#include "util/flags.h"
#include "util/stopwatch.h"
#include "util/strings.h"
#include "util/table.h"

namespace {

using namespace lmkg;
using query::Topology;

struct RegimeResult {
  double plans_per_sec = 0.0;
  double subplans_per_sec = 0.0;
  double memo_hit_rate = 0.0;
  size_t subplans_considered = 0;
  size_t subplans_priced = 0;
};

// One timed regime: `rounds` passes over the workload, best of
// `repeats`. `clear_memo` resets the memo before every repeat so each
// timing prices the full lattice (the cold regime); otherwise the memo
// carries over and the timing measures the memoized steady state.
RegimeResult MeasureRegime(planner::JoinPlanner* planner,
                           const std::vector<query::Query>& workload,
                           int rounds, int repeats, bool clear_memo) {
  RegimeResult best;
  double best_seconds = 0.0;
  for (int rep = 0; rep < repeats; ++rep) {
    if (clear_memo) planner->ClearMemo();
    size_t considered = 0, priced = 0, hits = 0, plans = 0;
    util::Stopwatch timer;
    for (int round = 0; round < rounds; ++round) {
      for (const query::Query& q : workload) {
        const planner::Plan& plan = planner->PlanQuery(q);
        considered += plan.subplans_considered;
        priced += plan.subplans_priced;
        hits += plan.memo_hits;
        ++plans;
      }
    }
    const double seconds = timer.ElapsedSeconds();
    const double pps = static_cast<double>(plans) / seconds;
    if (pps > best.plans_per_sec) {
      best.plans_per_sec = pps;
      best.subplans_considered = considered;
      best.subplans_priced = priced;
      best.memo_hit_rate =
          considered == 0
              ? 0.0
              : static_cast<double>(hits) / static_cast<double>(considered);
      best_seconds = seconds;
    }
  }
  best.subplans_per_sec =
      best_seconds == 0.0
          ? 0.0
          : static_cast<double>(best.subplans_priced) / best_seconds;
  return best;
}

std::unique_ptr<encoding::QueryEncoder> NewEncoder(const rdf::Graph& graph,
                                                   int max_size) {
  // Sized for every connected sub-plan of a max_size-pattern query:
  // <= max_size edges, <= max_size + 1 nodes (stars are the node-richest).
  return encoding::MakeSgEncoder(graph, max_size + 1, max_size,
                                 encoding::TermEncoding::kBinary);
}

}  // namespace

int main(int argc, char** argv) {
  eval::SuiteOptions options = eval::SuiteOptionsFromFlags(argc, argv);
  util::Flags flags(argc, argv);
  const bool smoke = flags.Has("smoke");
  std::vector<int> plan_sizes = {3, 4, 5};
  size_t queries_per_combo = 60;
  size_t quality_count = 30;
  if (smoke) {
    if (!flags.Has("scale")) options.dataset_scale = 0.01;
    if (!flags.Has("s_epochs"))
      options.s_epochs = std::min(options.s_epochs, 6);
    if (!flags.Has("train_queries"))
      options.train_queries_per_combo = 200;
    plan_sizes = {3, 4};
    queries_per_combo = 24;
    quality_count = 12;
  }
  quality_count =
      static_cast<size_t>(flags.GetInt("quality", quality_count));
  const int rounds = static_cast<int>(flags.GetInt("rounds", 2));
  const int repeats = static_cast<int>(flags.GetInt("repeats", 3));
  size_t shards = static_cast<size_t>(flags.GetInt("shards", 0));
  if (shards == 0)
    shards = std::max<size_t>(1, std::thread::hardware_concurrency());
  const std::string out_path =
      flags.GetString("out", "BENCH_planner.json");
  const int max_size = plan_sizes.back();

  rdf::Graph graph =
      data::MakeDataset("lubm", options.dataset_scale, options.seed);
  std::cerr << "[planner] " << rdf::GraphSummary(graph) << "\n";

  // Training covers every sub-plan size the DP will price: internal
  // nodes span 2..max_size patterns, stars and chains alike.
  sampling::WorkloadGenerator generator(graph);
  std::vector<sampling::LabeledQuery> train;
  std::vector<query::Query> workload;
  size_t combo = 0;
  for (Topology topology : {Topology::kStar, Topology::kChain}) {
    for (int size = 2; size <= max_size; ++size) {
      sampling::WorkloadGenerator::Options wopts;
      wopts.topology = topology;
      wopts.query_size = size;
      wopts.max_cardinality = options.max_cardinality;
      wopts.count = options.train_queries_per_combo;
      wopts.seed = options.seed + 7919 * combo + 1;
      auto labeled = generator.Generate(wopts);
      train.insert(train.end(), labeled.begin(), labeled.end());
      if (std::find(plan_sizes.begin(), plan_sizes.end(), size) !=
          plan_sizes.end()) {
        wopts.count = queries_per_combo;
        wopts.seed = options.seed + 7919 * combo + 104729;
        for (auto& lq : generator.Generate(wopts))
          workload.push_back(std::move(lq.query));
      }
      ++combo;
    }
  }

  core::LmkgSConfig model_config;
  model_config.hidden_dim = options.s_hidden_dim;
  model_config.epochs = std::min(options.s_epochs, 10);
  model_config.seed = options.seed;
  std::cerr << "[planner] training LMKG-S on " << train.size()
            << " queries...\n";
  core::LmkgS model(NewEncoder(graph, max_size), model_config);
  model.Train(train);
  std::ostringstream blob;
  if (!model.Save(blob).ok()) {
    std::cerr << "[planner] model serialization failed\n";
    return 1;
  }
  auto replicas = [&](size_t n) {
    std::vector<std::unique_ptr<core::CardinalityEstimator>> out;
    for (size_t i = 0; i < n; ++i) {
      auto replica = std::make_unique<core::LmkgS>(
          NewEncoder(graph, max_size), model_config);
      std::istringstream in(blob.str());
      if (!replica->Load(in).ok()) std::exit(1);
      out.push_back(std::move(replica));
    }
    return out;
  };
  std::cerr << "[planner] workload " << workload.size() << " queries ("
            << rounds << " rounds x best of " << repeats << "), "
            << shards << " shards\n";

  // --- Throughput track -------------------------------------------------
  // Naive: every sub-plan is one blocking Estimate with no result cache
  // in front and no memo behind — the pre-planner status quo.
  RegimeResult naive;
  {
    serving::ServiceConfig service_config;
    service_config.cache_capacity = 0;
    serving::EstimatorService service(replicas(shards), service_config);
    planner::ServingSource source(&service, /*batched=*/false);
    planner::PlannerConfig config;
    config.use_memo = false;
    config.batched_pricing = false;
    planner::JoinPlanner planner(&source, config);
    MeasureRegime(&planner, workload, 1, 1, false);  // warm-up
    naive = MeasureRegime(&planner, workload, rounds, repeats, false);
  }

  // Production: subset-fingerprint memo + bulk EstimateBatch fan-out +
  // the service's fingerprint cache. Cold (memo cleared per repeat)
  // isolates pricing bandwidth; warm is the gated steady state.
  RegimeResult cold, warm;
  {
    serving::ServiceConfig service_config;
    service_config.cache_capacity = 65536;
    serving::EstimatorService service(replicas(shards), service_config);
    planner::ServingSource source(&service, /*batched=*/true);
    planner::JoinPlanner planner(&source);
    MeasureRegime(&planner, workload, 1, 1, true);  // warm-up
    cold = MeasureRegime(&planner, workload, rounds, repeats, true);
    warm = MeasureRegime(&planner, workload, rounds, repeats, false);
  }
  const double speedup =
      naive.plans_per_sec == 0.0 ? 0.0
                                 : warm.plans_per_sec / naive.plans_per_sec;

  util::TablePrinter table(util::StrFormat(
      "JoinPlanner throughput (LUBM, %zu queries, simd=%s)",
      workload.size(), nn::SimdIsaName()));
  table.SetHeader({"regime", "plans/s", "subplans/s", "memo hit rate"});
  table.AddRow("naive", {naive.plans_per_sec, naive.subplans_per_sec,
                         naive.memo_hit_rate});
  table.AddRow("cold", {cold.plans_per_sec, cold.subplans_per_sec,
                        cold.memo_hit_rate});
  table.AddRow("warm", {warm.plans_per_sec, warm.subplans_per_sec,
                        warm.memo_hit_rate});
  table.Print(std::cout);
  std::cout << util::StrFormat(
      "batched+memoized vs naive: %.1fx plans/sec\n", speedup);

  // --- Plan-quality track -----------------------------------------------
  // True C_out of each estimator's chosen plan vs the true optimum (the
  // same DP with exact counts). Geometric mean across the sample; 1.0 =
  // the estimator always picks a true-optimal plan.
  query::Executor executor(graph);
  planner::OracleSource oracle(&executor);
  baselines::IndependenceEstimator independence(graph);
  baselines::CsetEstimator cset(graph);
  planner::DirectSource lmkg_source(&model, &independence);
  planner::DirectSource independence_source(&independence);
  planner::DirectSource cset_source(&cset, &independence);

  struct QualityEntry {
    const char* name;
    planner::CardinalitySource* source;
    double log_sum = 0.0;
  };
  std::vector<QualityEntry> entries = {{"lmkg", &lmkg_source},
                                       {"independence", &independence_source},
                                       {"cset", &cset_source}};
  planner::JoinPlanner oracle_planner(&oracle);
  quality_count = std::min(quality_count, workload.size());
  // Spread the sample across combos (the workload is combo-ordered).
  const size_t stride = std::max<size_t>(1, workload.size() / quality_count);
  size_t sampled = 0;
  for (size_t i = 0; i < workload.size() && sampled < quality_count;
       i += stride, ++sampled) {
    const query::Query& q = workload[i];
    const planner::Plan& optimal = oracle_planner.PlanQuery(q);
    const double optimal_cost = std::max(optimal.cost, 1.0);
    for (QualityEntry& entry : entries) {
      planner::JoinPlanner planner(entry.source);
      const planner::Plan& chosen = planner.PlanQuery(q);
      const double true_cost =
          std::max(planner::PlanTrueCost(q, chosen, &oracle), 1.0);
      entry.log_sum += std::log(true_cost / optimal_cost);
    }
  }
  util::TablePrinter quality_table(util::StrFormat(
      "Plan quality: true C_out vs optimal (geomean, %zu queries)",
      sampled));
  quality_table.SetHeader({"estimator", "overhead vs optimal"});
  std::ostringstream quality_json;
  for (size_t e = 0; e < entries.size(); ++e) {
    const double geomean =
        sampled == 0
            ? 0.0
            : std::exp(entries[e].log_sum / static_cast<double>(sampled));
    quality_table.AddRow(entries[e].name, {geomean});
    quality_json << (e == 0 ? "" : ", ") << "\"" << entries[e].name
                 << "\": " << util::StrFormat("%.4f", geomean);
  }
  quality_table.Print(std::cout);

  std::ofstream json(out_path);
  json << "{\n"
       << "  \"bench\": \"planner\",\n"
       << "  \"estimator\": \"LMKG-S\",\n"
       << "  \"dataset\": \"lubm\",\n"
       << "  \"simd_isa\": \"" << nn::SimdIsaName() << "\",\n"
       << "  \"scale\": " << options.dataset_scale << ",\n"
       << "  \"queries\": " << workload.size() << ",\n"
       << "  \"rounds\": " << rounds << ",\n"
       << "  \"repeats\": " << repeats << ",\n"
       << "  \"shards\": " << shards << ",\n"
       << "  \"hardware_threads\": "
       << std::thread::hardware_concurrency() << ",\n"
       << "  \"gated_protocol\": \"warm memo steady state, best of "
       << repeats << " timings\",\n"
       << "  \"plans_per_sec\": " << warm.plans_per_sec << ",\n"
       << "  \"plans_per_sec_cold\": " << cold.plans_per_sec << ",\n"
       << "  \"plans_per_sec_naive\": " << naive.plans_per_sec << ",\n"
       << "  \"batched_vs_naive_speedup\": " << speedup << ",\n"
       << "  \"subplans_per_sec\": " << cold.subplans_per_sec << ",\n"
       << "  \"memo_hit_rate\": " << warm.memo_hit_rate << ",\n"
       << "  \"subplans_considered_per_pass\": "
       << cold.subplans_considered / static_cast<size_t>(rounds) << ",\n"
       << "  \"plan_quality\": {\"sampled_queries\": " << sampled << ", "
       << quality_json.str() << "}\n"
       << "}\n";
  std::cout << "\nwrote " << out_path << "\n";
  return 0;
}
