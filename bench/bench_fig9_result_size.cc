// Fig. 9: accuracy (avg q-error) vs query result size — log5 buckets with
// the top buckets grouped (outliers included). Datasets: SWDF, LUBM and
// YAGO; LMKG-U is excluded on YAGO exactly as in the paper ("with the
// current setting, LMKG-U is not able to learn the complete set of
// queries" — the vocabulary is too large).
#include <iostream>

#include "data/dataset.h"
#include "eval/comparison.h"
#include "eval/harness.h"
#include "eval/suite.h"
#include "util/flags.h"
#include "util/math.h"
#include "util/strings.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace lmkg;
  eval::SuiteOptions options = eval::SuiteOptionsFromFlags(argc, argv);
  util::Flags flags(argc, argv);
  auto datasets =
      util::Split(flags.GetString("datasets", "swdf,yago"), ',');
  std::cout << "Fig. 9: avg q-error for different query result sizes "
               "(scale=" << options.dataset_scale << ")\n\n";

  for (const std::string& name : datasets) {
    // YAGO runs at a quarter of the requested scale: the point of the
    // YAGO column is the huge-vocabulary regime (no LMKG-U), not raw
    // size, and the full comparison on it is disproportionately slow.
    double scale = name == "yago" ? options.dataset_scale * 0.25
                                  : options.dataset_scale;
    rdf::Graph graph = data::MakeDataset(name, scale, options.seed);
    std::cerr << "[fig9] " << name << ": " << rdf::GraphSummary(graph)
              << "\n";
    bool include_u = name != "yago";
    eval::ComparisonResult comparison =
        eval::RunComparison(graph, options, include_u);

    util::TablePrinter table("avg q-error by result size — " + name +
                             (include_u ? "" : " (no LMKG-U)"));
    std::vector<std::string> header = {"estimator"};
    for (const auto& bucket : eval::PaperBuckets())
      header.push_back(bucket.label);
    table.SetHeader(header);
    for (size_t e = 0; e < comparison.estimator_names.size(); ++e) {
      std::vector<double> row;
      for (const auto& bucket : eval::PaperBuckets()) {
        std::vector<double> qerrors;
        for (size_t c = 0; c < comparison.test.combos.size(); ++c) {
          const auto& workload = comparison.test.workloads[c];
          const auto& cell = comparison.cells[e][c];
          for (size_t i = 0; i < workload.size(); ++i) {
            int b = util::ResultSizeBucket(workload[i].cardinality);
            if (b >= bucket.lo && b <= bucket.hi)
              qerrors.push_back(cell.qerrors[i]);
          }
        }
        row.push_back(eval::MeanOf(qerrors));
      }
      table.AddRow(comparison.estimator_names[e], row);
    }
    table.Print(std::cout);
    std::cout << "\n";
  }
  std::cout << "Paper shape: LMKG-S wins the small buckets but is hit by "
               "the outlier buckets; LMKG-U is the most uniform across "
               "buckets; cset/wj only catch up on the largest results.\n";
  return 0;
}
