// Fig. 11: estimation time (ms) by query size and by query type for all
// estimators (SWDF and LUBM in the paper). For the sampling approaches
// the paper measures the time of generating their full sample budget per
// estimate — which is what one EstimateCardinality call does here.
#include <iostream>

#include "data/dataset.h"
#include "eval/comparison.h"
#include "eval/suite.h"
#include "util/flags.h"
#include "util/strings.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace lmkg;
  using query::Topology;
  eval::SuiteOptions options = eval::SuiteOptionsFromFlags(argc, argv);
  util::Flags flags(argc, argv);
  auto datasets = util::Split(flags.GetString("datasets", "swdf"), ',');
  std::cout << "Fig. 11: estimation time in ms (scale="
            << options.dataset_scale << ")\n\n";

  for (const std::string& name : datasets) {
    rdf::Graph graph =
        data::MakeDataset(name, options.dataset_scale, options.seed);
    std::cerr << "[fig11] " << name << ": " << rdf::GraphSummary(graph)
              << "\n";
    eval::ComparisonResult comparison =
        eval::RunComparison(graph, options, /*include_lmkg_u=*/true);

    util::TablePrinter by_size("avg estimation ms by query size — " + name);
    std::vector<std::string> header = {"estimator"};
    for (int size : options.query_sizes)
      header.push_back(std::to_string(size));
    by_size.SetHeader(header);
    util::TablePrinter by_type("avg estimation ms by query type — " + name);
    by_type.SetHeader({"estimator", "star", "chain"});

    for (size_t e = 0; e < comparison.estimator_names.size(); ++e) {
      std::vector<double> size_row;
      for (int size : options.query_sizes) {
        std::vector<double> times;
        for (size_t c = 0; c < comparison.test.combos.size(); ++c) {
          if (comparison.test.combos[c].second != size) continue;
          const auto& cell = comparison.cells[e][c];
          times.insert(times.end(), cell.times_ms.begin(),
                       cell.times_ms.end());
        }
        size_row.push_back(eval::MeanOf(times));
      }
      by_size.AddRow(comparison.estimator_names[e], size_row);

      std::vector<double> type_row;
      for (Topology topology : {Topology::kStar, Topology::kChain}) {
        std::vector<double> times;
        for (size_t c = 0; c < comparison.test.combos.size(); ++c) {
          if (comparison.test.combos[c].first != topology) continue;
          const auto& cell = comparison.cells[e][c];
          times.insert(times.end(), cell.times_ms.begin(),
                       cell.times_ms.end());
        }
        type_row.push_back(eval::MeanOf(times));
      }
      by_type.AddRow(comparison.estimator_names[e], type_row);
    }
    by_size.Print(std::cout);
    std::cout << "\n";
    by_type.Print(std::cout);
    std::cout << "\n";
  }
  std::cout << "Paper shape: cset is fastest, LMKG-S next (both nearly "
               "size-independent); the sampling approaches grow with the "
               "number of joins; LMKG-U sits in between.\n";
  return 0;
}
