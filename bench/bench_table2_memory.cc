// Table II: memory consumption of the approaches — LMKG-U and LMKG-S
// models for query sizes k = 2, 3, 5, SUMRDF and CSET summaries, and the
// MSCN models (0 / 1k samples). Sampling approaches (wj, jsub, impr) hold
// no synopsis and are omitted, as in the paper.
#include <iostream>

#include "baselines/cset.h"
#include "baselines/mscn.h"
#include "baselines/sumrdf.h"
#include "core/lmkg_s.h"
#include "core/lmkg_u.h"
#include "data/dataset.h"
#include "encoding/query_encoder.h"
#include "eval/suite.h"
#include "util/flags.h"
#include "util/strings.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace lmkg;
  using query::Topology;
  eval::SuiteOptions options = eval::SuiteOptionsFromFlags(argc, argv);
  util::Flags flags(argc, argv);
  auto datasets =
      util::Split(flags.GetString("datasets", "swdf,lubm,yago"), ',');
  std::cout << "Table II: memory consumption (scale="
            << options.dataset_scale << ")\n\n";

  util::TablePrinter table("model/synopsis sizes");
  table.SetHeader({"dataset", "LMKG-U k=2", "LMKG-U k=3", "LMKG-U k=5",
                   "LMKG-S k=2", "LMKG-S k=3", "LMKG-S k=5", "SUMRDF",
                   "CSET", "MSCN 0/1k"});

  for (const std::string& name : datasets) {
    rdf::Graph graph =
        data::MakeDataset(name, options.dataset_scale, options.seed);
    std::cerr << "[table2] " << name << ": " << rdf::GraphSummary(graph)
              << "\n";
    std::vector<std::string> row = {name};

    // LMKG-U: untrained instances suffice — parameter counts are fixed by
    // the architecture. On YAGO the paper reports X (infeasible); we
    // still *construct* the model to show the size it would need.
    for (int k : {2, 3, 5}) {
      core::LmkgUConfig config;
      config.hidden_dim = options.u_hidden_dim;
      config.embedding_dim = options.u_embedding_dim;
      core::LmkgU model(graph, Topology::kStar, k, config);
      std::string size = util::HumanBytes(model.MemoryBytes());
      if (name == "yago") size += " (X)";
      row.push_back(size);
    }
    // LMKG-S with SG-Encoding sized for k.
    for (int k : {2, 3, 5}) {
      core::LmkgSConfig config;
      config.hidden_dim = options.s_hidden_dim;
      core::LmkgS model(
          encoding::MakeSgEncoder(graph, k + 1, k,
                                  encoding::TermEncoding::kBinary),
          config);
      row.push_back(util::HumanBytes(model.MemoryBytes()));
    }
    row.push_back(
        util::HumanBytes(baselines::SumRdfEstimator(graph).MemoryBytes()));
    row.push_back(
        util::HumanBytes(baselines::CsetEstimator(graph).MemoryBytes()));
    baselines::MscnConfig mscn0;
    mscn0.num_samples = 0;
    baselines::MscnConfig mscn1k;
    mscn1k.num_samples = 1000;
    row.push_back(util::HumanBytes(
                      baselines::MscnEstimator(graph, mscn0).MemoryBytes()) +
                  " / " +
                  util::HumanBytes(baselines::MscnEstimator(graph, mscn1k)
                                       .MemoryBytes()));
    table.AddRow(row);
  }
  table.Print(std::cout);
  std::cout << "\nPaper shape: LMKG-S is small (few MB) and grows mildly "
               "with k; LMKG-U is an order of magnitude larger and grows "
               "with the term vocabulary (infeasible for YAGO, marked X); "
               "CSET is tiny for LUBM but large for YAGO.\n";
  return 0;
}
