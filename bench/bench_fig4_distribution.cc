// Fig. 4: query-cardinality distribution per dataset. The paper shows
// that, averaged over query sizes, the vast majority of queries have a
// small result size with a long tail of outliers. We generate workloads
// WITHOUT bucket balancing (the natural distribution) and print the share
// of queries per log5 result-size bucket.
#include <iostream>
#include <map>

#include "data/dataset.h"
#include "eval/harness.h"
#include "eval/suite.h"
#include "sampling/workload.h"
#include "util/math.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace lmkg;
  using query::Topology;
  eval::SuiteOptions options = eval::SuiteOptionsFromFlags(argc, argv);
  std::cout << "Fig. 4: datasets' query cardinality distribution (scale="
            << options.dataset_scale << ")\n\n";

  util::TablePrinter table("share of queries per result-size bucket (%)");
  std::vector<std::string> header = {"dataset"};
  for (const auto& bucket : eval::PaperBuckets()) header.push_back(bucket.label);
  table.SetHeader(header);

  for (const auto& name : data::DatasetNames()) {
    rdf::Graph graph =
        data::MakeDataset(name, options.dataset_scale, options.seed);
    std::cerr << "[fig4] " << name << ": " << rdf::GraphSummary(graph)
              << "\n";
    sampling::WorkloadGenerator generator(graph);
    std::map<int, size_t> histogram;
    size_t total = 0;
    for (Topology topology : {Topology::kStar, Topology::kChain}) {
      for (int size : options.query_sizes) {
        sampling::WorkloadGenerator::Options wopts;
        wopts.topology = topology;
        wopts.query_size = size;
        wopts.count = options.test_queries_per_combo;
        wopts.bucket_balanced = false;  // natural distribution
        wopts.max_cardinality = options.max_cardinality;
        wopts.seed = options.seed + size * 31 +
                     (topology == Topology::kChain ? 100 : 0);
        for (const auto& lq : generator.Generate(wopts)) {
          ++histogram[util::ResultSizeBucket(lq.cardinality)];
          ++total;
        }
      }
    }
    std::vector<double> row;
    for (const auto& bucket : eval::PaperBuckets()) {
      size_t count = 0;
      for (int b = bucket.lo; b <= bucket.hi; ++b)
        if (histogram.count(b)) count += histogram[b];
      row.push_back(total > 0 ? 100.0 * count / total : 0.0);
    }
    table.AddRow(name, row);
  }
  table.Print(std::cout);
  std::cout << "\nPaper shape: heavily skewed towards small result sizes "
               "with a thin tail of very large outliers.\n";
  return 0;
}
