// Extension bench (paper §IV future work): range-query cardinality
// estimation. LMKG proper handles equality only; the paper sketches the
// extension — "modify the input encoding with histogram selectivity
// values". This bench measures that extension (RangeLmkgS) against the
// classical histogram + independence + join-uniformity estimator the
// introduction criticizes, across range widths and query shapes.
#include <algorithm>
#include <cmath>
#include <iostream>
#include <memory>
#include <vector>

#include "data/dataset.h"
#include "encoding/query_encoder.h"
#include "eval/suite.h"
#include "range/histogram.h"
#include "range/range_encoder.h"
#include "range/range_independence.h"
#include "range/range_lmkg_s.h"
#include "range/range_workload.h"
#include "util/flags.h"
#include "util/math.h"
#include "util/strings.h"
#include "util/table.h"

namespace {

using namespace lmkg;

// Width fraction of a query's first (widest) range constraint.
double WidthFraction(const range::LabeledRangeQuery& lq, size_t num_nodes) {
  double widest = 0.0;
  for (const auto& r : lq.query.ranges)
    widest = std::max(
        widest, (static_cast<double>(r.hi) - r.lo + 1.0) / num_nodes);
  return widest;
}

}  // namespace

int main(int argc, char** argv) {
  eval::SuiteOptions options = eval::SuiteOptionsFromFlags(argc, argv);
  util::Flags flags(argc, argv);
  const std::string dataset = flags.GetString("dataset", "swdf");
  const size_t train_count =
      static_cast<size_t>(flags.GetInt("train", 500));
  const size_t test_count = static_cast<size_t>(flags.GetInt("test", 150));
  const size_t hist_buckets =
      static_cast<size_t>(flags.GetInt("buckets", 32));

  rdf::Graph graph =
      data::MakeDataset(dataset, options.dataset_scale, options.seed);
  std::cout << "Extension: range-query estimation (" << dataset
            << ", scale=" << options.dataset_scale
            << ", histogram buckets=" << hist_buckets << ")\n"
            << rdf::GraphSummary(graph) << "\n\n";

  range::PredicateHistograms histograms(graph, hist_buckets);
  range::RangeWorkloadGenerator generator(graph);

  // Train + test workloads over star-2, star-3, chain-2 with the full
  // width spectrum.
  struct Combo {
    query::Topology topology;
    int size;
    const char* label;
  };
  const std::vector<Combo> combos = {
      {query::Topology::kStar, 2, "star-2"},
      {query::Topology::kStar, 3, "star-3"},
      {query::Topology::kChain, 2, "chain-2"},
  };
  std::vector<range::LabeledRangeQuery> train;
  std::vector<std::vector<range::LabeledRangeQuery>> tests;
  for (size_t c = 0; c < combos.size(); ++c) {
    range::RangeWorkloadGenerator::Options wopts;
    wopts.topology = combos[c].topology;
    wopts.query_size = combos[c].size;
    wopts.count = train_count;
    wopts.max_cardinality = options.max_cardinality;
    wopts.seed = options.seed + 11 * c + 1;
    auto batch = generator.Generate(wopts);
    train.insert(train.end(), batch.begin(), batch.end());
    wopts.count = test_count;
    wopts.seed = options.seed + 11 * c + 7;
    tests.push_back(generator.Generate(wopts));
    std::cerr << "[ext-range] " << combos[c].label << ": "
              << batch.size() << " train / " << tests.back().size()
              << " test queries\n";
  }

  // The learned range estimator: SG base encoding sized for the largest
  // combo, two extra slots per pattern.
  const int max_size = 3;
  core::LmkgSConfig s_config;
  s_config.hidden_dim = options.s_hidden_dim;
  s_config.epochs = options.s_epochs;
  s_config.seed = options.seed;
  range::RangeLmkgS model(
      std::make_unique<range::RangeQueryEncoder>(
          encoding::MakeSgEncoder(graph, max_size + 1, max_size,
                                  encoding::TermEncoding::kBinary),
          &histograms, max_size),
      s_config);
  std::cerr << "[ext-range] training LMKG-S-R on " << train.size()
            << " queries...\n";
  auto stats = model.Train(train);
  std::cerr << "[ext-range] trained in " << stats.seconds << "s\n";

  range::RangeIndependenceEstimator baseline(graph, &histograms);

  // Per-shape table.
  util::TablePrinter by_shape("avg q-error by query shape — " + dataset);
  by_shape.SetHeader({"estimator", "star-2", "star-3", "chain-2"});
  std::vector<double> model_row, baseline_row;
  for (auto& pool : tests) {
    std::vector<double> mq, bq;
    for (const auto& lq : pool) {
      if (!model.CanEstimate(lq.query)) continue;
      mq.push_back(util::QError(model.EstimateCardinality(lq.query),
                                lq.cardinality));
      bq.push_back(util::QError(baseline.EstimateCardinality(lq.query),
                                lq.cardinality));
    }
    model_row.push_back(util::QErrorStats::Compute(mq).mean);
    baseline_row.push_back(util::QErrorStats::Compute(bq).mean);
  }
  by_shape.AddRow("LMKG-S-R", model_row);
  by_shape.AddRow("hist-indep", baseline_row);
  by_shape.Print(std::cout);
  std::cout << "\n";

  // Per-width-band table (pooled over shapes).
  struct Band {
    double lo, hi;
    const char* label;
  };
  const std::vector<Band> bands = {{0.0, 0.01, "narrow (<1%)"},
                                   {0.01, 0.08, "medium (1-8%)"},
                                   {0.08, 1.01, "broad (>8%)"}};
  util::TablePrinter by_width("avg q-error by range width — " + dataset);
  by_width.SetHeader({"estimator", bands[0].label, bands[1].label,
                      bands[2].label});
  std::vector<double> model_w, baseline_w;
  for (const Band& band : bands) {
    std::vector<double> mq, bq;
    for (const auto& pool : tests) {
      for (const auto& lq : pool) {
        double f = WidthFraction(lq, graph.num_nodes());
        if (f < band.lo || f >= band.hi) continue;
        if (!model.CanEstimate(lq.query)) continue;
        mq.push_back(util::QError(model.EstimateCardinality(lq.query),
                                  lq.cardinality));
        bq.push_back(util::QError(baseline.EstimateCardinality(lq.query),
                                  lq.cardinality));
      }
    }
    model_w.push_back(util::QErrorStats::Compute(mq).mean);
    baseline_w.push_back(util::QErrorStats::Compute(bq).mean);
  }
  by_width.AddRow("LMKG-S-R", model_w);
  by_width.AddRow("hist-indep", baseline_w);
  by_width.Print(std::cout);

  std::cout << "\nModel memory: " << util::HumanBytes(model.MemoryBytes())
            << "; histogram synopsis: "
            << util::HumanBytes(histograms.MemoryBytes())
            << "\nExpected shape: the learned estimator wins where the "
               "independence assumption bites (joins + correlated "
               "predicates, selective ranges); the histogram baseline is "
               "competitive for broad ranges on single-join stars.\n";
  return 0;
}
