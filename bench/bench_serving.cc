// Serving-subsystem benchmark: closed-loop and open-loop load generation
// over an LUBM workload through serving::EstimatorService — the
// concurrent-request shape the batched pipeline was built for. Clients
// submit single queries; the service micro-batches them into the LMKG-S
// EstimateCardinalityBatch fast path across model replicas, optionally
// with the fingerprint result cache in front.
//
// Closed loop: C client threads, each looping over its own shuffled copy
// of the workload with one outstanding request (the optimizer-in-the-hot-
// loop shape) — sweeps client counts x batcher configs and reports
// achieved qps, p50/p95/p99 end-to-end latency, mean batch fill, and
// cache hit rate, against the serial per-query loop baseline.
//
// Open loop: a dispatcher submits EstimateAsync at a fixed arrival rate
// regardless of completions (the heavy-traffic shape), showing how the
// coalescing delay trades tail latency for batch fill below saturation.
//
// Workload shift: the model-lifecycle scenario — AdaptiveLmkg replicas
// covering only star combos serve a client stream that shifts to chains;
// a serving::ModelLifecycle cycle detects the drift from the service's
// workload tap, trains the missing chain models on a shadow replica off
// the serving path, hot-swaps the replicas, and bumps the cache epoch.
// Reports chain qps and median q-error before vs after the swap,
// adaptation cost, and stale-cache evictions.
//
// Feedback loop: the executor-feedback scenario — the same drift is run
// TWICE over a fixed star-2 working set the model has never seen: once
// with the full loop closed (served estimates noted in a
// FeedbackCollector, every query executed through query::Executor whose
// truth sink feeds the collector, lifecycle cycles draining the pairs
// into blended incremental retrains and per-combo swaps) and once with
// feedback disabled (same serving + lifecycle, no collector). The
// feedback run's median q-error must converge measurably below the
// feedback-off run's; the JSON's feedback_loop.qerror_convergence_ratio
// (off/on final medians, > 1 = feedback wins) is gated as a
// machine-relative floor on the gcc Release CI leg.
//
// SWDF correlated drift: a NON-GATED accuracy track on the skewed SWDF
// dataset, where the workload mix slides from star-2 to chain-3 over
// several phases (topology and size drifting together). Reports the
// adaptive replica's median q-error per phase against the frozen
// independence baseline, plus the post-adaptation re-score of the fully
// drifted mix — the adaptation win LUBM's uniform data cannot show.
// Emitted as the JSON's swdf_drift object; nothing gates it.
//
// Emits BENCH_serving.json; CI gates the closed-loop 16-client metrics
// against the machine-class baseline
// bench/baselines/serving_baseline_{N}core.json (selected by the JSON's
// hardware_threads) via scripts/check_bench_regression.py, and
// additionally gates 4-shard vs 1-shard scaling from two runs of the
// same job (--scaling mode).
//
// Two gated metrics, both measured separately from the sweep as best of
// --repeats timings (single passes swing with scheduler timing on small
// machines; the steady-state path only slows down under interference,
// so max is the robust statistic, same protocol as
// bench_throughput_batch):
//   closed_loop_16_qps          cached config, cache warmed by one full
//                               pass (the production config)
//   closed_loop_16_uncached_qps greedy config, no cache — every request
//                               crosses the ring into a batch compute,
//                               so THIS is the metric that scales with
//                               shards (the cached one noise-floors on
//                               the lock-free hit path)
// The JSON also reports uncached_vs_serial (closed_loop_16_uncached_qps
// over the serial loop): with the inline-execution fast path an idle
// single-shard service runs uncontended requests on the caller thread,
// which lifted this ratio from ~0.70x to ~0.87x on a 1-core container
// (and single-client uncached qps by 2.2x) — the residual gap to serial
// is the fingerprint + stats + mutex bookkeeping a service request pays
// and a bare virtual call does not.
//
// Flags: the common suite flags (--scale, --seed, --queries, ...) plus
//   --rounds=N    closed-loop passes over the workload per client
//                 (default 3)
//   --repeats=N   independent timings of the gated steady-state
//                 measurement; the best is reported (default 3)
//   --shards=N    serving shards = model replicas inside the service
//                 (default 0 = one per hardware thread)
//   --smoke       CI-sized run: scale 0.01, client counts {1,4,16},
//                 2 rounds (the gated 16-client entries are still
//                 emitted)
//   --out=PATH    JSON output path (default BENCH_serving.json)
#include <algorithm>
#include <fstream>
#include <future>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/adaptive.h"
#include "core/lmkg_s.h"
#include "core/single_pattern.h"
#include "data/dataset.h"
#include "encoding/query_encoder.h"
#include "eval/suite.h"
#include "nn/tensor.h"
#include "query/executor.h"
#include "serving/estimator_service.h"
#include "serving/feedback_collector.h"
#include "serving/model_lifecycle.h"
#include "util/flags.h"
#include "util/math.h"
#include "util/random.h"
#include "util/stopwatch.h"
#include "util/strings.h"
#include "util/table.h"

namespace {

using namespace lmkg;

struct BatcherConfig {
  std::string name;
  size_t max_batch_size;
  size_t max_queue_delay_us;
  bool cache;
};

struct RunResult {
  double qps = 0.0;
  serving::ServingStatsSnapshot stats;
};

// One trained LMKG-S serialized once; every service replica is a fresh
// Load of the same blob ("train once in the creation phase, reuse
// thereafter" — here across replicas).
class ReplicaFactory {
 public:
  ReplicaFactory(const rdf::Graph& graph, int max_size,
                 const core::LmkgSConfig& config,
                 const std::vector<sampling::LabeledQuery>& train)
      : graph_(graph), max_size_(max_size), config_(config) {
    core::LmkgS model(NewEncoder(), config_);
    model.Train(train);
    std::ostringstream blob;
    if (!model.Save(blob).ok()) {
      std::cerr << "[serving] model serialization failed\n";
      std::exit(1);
    }
    blob_ = blob.str();
  }

  std::unique_ptr<core::CardinalityEstimator> NewReplica() const {
    auto replica =
        std::make_unique<core::LmkgS>(NewEncoder(), config_);
    std::istringstream blob(blob_);
    if (!replica->Load(blob).ok()) {
      std::cerr << "[serving] replica load failed\n";
      std::exit(1);
    }
    return replica;
  }

  std::vector<std::unique_ptr<core::CardinalityEstimator>> Replicas(
      size_t n) const {
    std::vector<std::unique_ptr<core::CardinalityEstimator>> replicas;
    replicas.reserve(n);
    for (size_t i = 0; i < n; ++i) replicas.push_back(NewReplica());
    return replicas;
  }

  std::unique_ptr<core::LmkgS> NewModel() const {
    auto model = std::make_unique<core::LmkgS>(NewEncoder(), config_);
    std::istringstream blob(blob_);
    if (!model->Load(blob).ok()) std::exit(1);
    return model;
  }

 private:
  std::unique_ptr<encoding::QueryEncoder> NewEncoder() const {
    return encoding::MakeSgEncoder(graph_, max_size_ + 1, max_size_,
                                   encoding::TermEncoding::kBinary);
  }

  const rdf::Graph& graph_;
  int max_size_;
  core::LmkgSConfig config_;
  std::string blob_;
};

// Queries/sec of the pre-serving status quo: one thread, one virtual
// call per query.
double MeasureSerial(core::LmkgS* model,
                     const std::vector<query::Query>& queries,
                     int rounds, int repeats) {
  double best = 0.0;
  std::vector<double> out(queries.size(), 0.0);
  for (int rep = 0; rep < repeats; ++rep) {
    util::Stopwatch timer;
    for (int round = 0; round < rounds; ++round)
      for (size_t i = 0; i < queries.size(); ++i)
        out[i] = model->EstimateCardinality(queries[i]);
    best = std::max(best, static_cast<double>(queries.size()) * rounds /
                              timer.ElapsedSeconds());
  }
  return best;
}

// Closed loop: `clients` threads, each `rounds` passes over its own
// shuffled order, one outstanding blocking request each.
RunResult RunClosedLoop(serving::EstimatorService* service,
                        const std::vector<query::Query>& queries,
                        size_t clients, int rounds, uint64_t seed) {
  service->ResetStats();
  util::Stopwatch timer;
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      std::vector<size_t> order(queries.size());
      for (size_t i = 0; i < order.size(); ++i) order[i] = i;
      util::Pcg32 rng(seed + c);
      for (int round = 0; round < rounds; ++round) {
        rng.Shuffle(&order);
        for (size_t i : order) (void)service->Estimate(queries[i]);
      }
    });
  }
  for (auto& t : threads) t.join();
  const double seconds = timer.ElapsedSeconds();
  RunResult result;
  result.stats = service->Stats();
  result.qps = static_cast<double>(result.stats.requests) / seconds;
  return result;
}

// Open loop: submit EstimateAsync at `target_qps` regardless of
// completions; the futures' completion is awaited at the end.
RunResult RunOpenLoop(serving::EstimatorService* service,
                      const std::vector<query::Query>& queries,
                      double target_qps, size_t total_requests,
                      uint64_t seed) {
  service->ResetStats();
  std::vector<std::future<double>> futures;
  futures.reserve(total_requests);
  util::Pcg32 rng(seed);
  util::Stopwatch timer;
  const double interval_s = 1.0 / target_qps;
  for (size_t i = 0; i < total_requests; ++i) {
    const double due = static_cast<double>(i) * interval_s;
    while (timer.ElapsedSeconds() < due) {
      // Busy-wait keeps the pacing tight at microsecond intervals.
    }
    const size_t pick = rng.UniformInt(static_cast<uint32_t>(
        queries.size()));
    futures.push_back(service->EstimateAsync(queries[pick]));
  }
  for (auto& f : futures) (void)f.get();
  const double seconds = timer.ElapsedSeconds();
  RunResult result;
  result.stats = service->Stats();
  result.qps = static_cast<double>(total_requests) / seconds;
  return result;
}

std::string StatsJson(const RunResult& result) {
  return util::StrFormat(
      "\"qps\": %.1f, \"p50_us\": %.2f, \"p95_us\": %.2f, "
      "\"p99_us\": %.2f, \"mean_us\": %.2f, \"mean_batch_fill\": %.2f, "
      "\"cache_hit_rate\": %.4f",
      result.qps, result.stats.p50_us, result.stats.p95_us,
      result.stats.p99_us, result.stats.mean_us,
      result.stats.mean_batch_fill, result.stats.cache_hit_rate);
}

}  // namespace

int main(int argc, char** argv) {
  using query::Topology;
  eval::SuiteOptions options = eval::SuiteOptionsFromFlags(argc, argv);
  util::Flags flags(argc, argv);
  const bool smoke = flags.Has("smoke");
  if (smoke) {
    // CI-sized preset; explicit flags still win.
    if (!flags.Has("scale")) options.dataset_scale = 0.01;
    if (!flags.Has("queries")) options.test_queries_per_combo = 40;
    if (!flags.Has("train_queries"))
      options.train_queries_per_combo = 200;
    if (!flags.Has("s_epochs"))
      options.s_epochs = std::min(options.s_epochs, 6);
  }
  const int rounds =
      static_cast<int>(flags.GetInt("rounds", smoke ? 2 : 3));
  const int repeats = static_cast<int>(flags.GetInt("repeats", 3));
  // One serving shard per replica; 0 = shard-per-core.
  size_t shards = static_cast<size_t>(flags.GetInt("shards", 0));
  if (shards == 0)
    shards = std::max<size_t>(1, std::thread::hardware_concurrency());
  const std::string out_path = flags.GetString("out", "BENCH_serving.json");
  std::vector<size_t> client_counts = {1, 4, 16, 64};
  if (smoke) client_counts = {1, 4, 16};

  // Batcher configurations under sweep. "greedy" dispatches with
  // whatever is queued (pure natural batching: fill grows with load);
  // "delay200" holds batches open up to 200us (trades latency for fill —
  // pays off in the open-loop section, taxes a closed loop); "cached"
  // is greedy plus the fingerprint LRU in front — the production config
  // and the one CI gates.
  const std::vector<BatcherConfig> configs = {
      {"greedy", 64, 0, false},
      {"delay200", 64, 200, false},
      {"cached", 64, 0, true},
  };
  const std::string gated_config = "cached";
  const size_t gated_clients = 16;

  rdf::Graph graph =
      data::MakeDataset("lubm", options.dataset_scale, options.seed);
  std::cerr << "[serving] " << rdf::GraphSummary(graph) << "\n";

  const int max_size = options.query_sizes.back();
  core::LmkgSConfig model_config;
  model_config.hidden_dim = options.s_hidden_dim;
  model_config.epochs = std::min(options.s_epochs, 10);  // accuracy unused
  model_config.seed = options.seed;

  sampling::WorkloadGenerator generator(graph);
  std::vector<sampling::LabeledQuery> train;
  std::vector<query::Query> workload;
  // Small-size per-topology slices for the workload-shift phase (its
  // adaptive models train per combo, so it sticks to sizes 2-3).
  std::vector<query::Query> shift_star_queries;
  std::vector<query::Query> shift_chain_queries;
  std::vector<sampling::LabeledQuery> shift_chain_tests;
  size_t combo = 0;
  for (Topology topology : {Topology::kStar, Topology::kChain}) {
    for (int size : options.query_sizes) {
      sampling::WorkloadGenerator::Options wopts;
      wopts.topology = topology;
      wopts.query_size = size;
      wopts.max_cardinality = options.max_cardinality;
      wopts.count = options.train_queries_per_combo;
      wopts.seed = options.seed + 7919 * combo + 1;
      auto labeled = generator.Generate(wopts);
      train.insert(train.end(), labeled.begin(), labeled.end());
      wopts.count = options.test_queries_per_combo;
      wopts.seed = options.seed + 7919 * combo + 104729;
      for (auto& lq : generator.Generate(wopts)) {
        if (size <= 3) {
          if (topology == Topology::kStar) {
            shift_star_queries.push_back(lq.query);
          } else {
            shift_chain_queries.push_back(lq.query);
            shift_chain_tests.push_back(lq);
          }
        }
        workload.push_back(std::move(lq.query));
      }
      ++combo;
    }
  }
  std::cerr << "[serving] training LMKG-S on " << train.size()
            << " queries...\n";
  ReplicaFactory factory(graph, max_size, model_config, train);
  std::cerr << "[serving] workload " << workload.size() << " queries, "
            << rounds << " rounds/client, " << shards
            << " shards (one replica each)\n";

  // Baseline: the serial per-query loop (no service, no threads).
  auto serial_model = factory.NewModel();
  const double serial_qps =
      MeasureSerial(serial_model.get(), workload, rounds, 3);

  util::TablePrinter table(util::StrFormat(
      "EstimatorService closed loop (LUBM, qps, simd=%s)",
      nn::SimdIsaName()));
  table.SetHeader({"config", "clients", "qps", "vs serial", "p50 us",
                   "p99 us", "fill", "hit rate"});
  table.AddRow("serial", {1.0, serial_qps, 1.0, 0.0, 0.0, 0.0, 0.0});

  std::ostringstream closed_json;
  bool first_entry = true;
  for (const BatcherConfig& config : configs) {
    for (size_t clients : client_counts) {
      serving::ServiceConfig service_config;
      service_config.max_batch_size = config.max_batch_size;
      service_config.max_queue_delay_us = config.max_queue_delay_us;
      service_config.cache_capacity = config.cache ? 65536 : 0;
      serving::EstimatorService service(factory.Replicas(shards),
                                        service_config);
      // Warm-up pass (scratch buffers, first-touch pages) — skipped for
      // cached configs so the measured run starts with a COLD cache and
      // the reported hit rate reflects the workload's repeat structure,
      // not a pre-filled cache.
      if (!config.cache)
        RunClosedLoop(&service, workload, std::min<size_t>(clients, 4), 1,
                      options.seed + 17);
      const RunResult result = RunClosedLoop(
          &service, workload, clients, rounds, options.seed + 1000);
      table.AddRow(
          util::StrFormat("%s/%zu", config.name.c_str(), clients),
          {static_cast<double>(clients), result.qps,
           result.qps / serial_qps, result.stats.p50_us,
           result.stats.p99_us, result.stats.mean_batch_fill,
           result.stats.cache_hit_rate});
      closed_json << (first_entry ? "" : ",\n")
                  << "    {\"config\": \"" << config.name
                  << "\", \"clients\": " << clients
                  << ", \"max_batch_size\": " << config.max_batch_size
                  << ", \"max_queue_delay_us\": "
                  << config.max_queue_delay_us
                  << ", \"cache\": " << (config.cache ? "true" : "false")
                  << ", " << StatsJson(result) << "}";
      first_entry = false;
    }
  }
  table.Print(std::cout);

  // The gated metrics: steady-state closed-loop qps at 16 clients, best
  // of `repeats` timings (single passes swing with scheduler timing;
  // the steady-state path only slows down under interference, so max is
  // the robust statistic, as in bench_throughput_batch).
  //
  // Cached: the production config, cache warmed by one full pass — the
  // absolute-throughput gate. Uncached (greedy, no cache): every request
  // crosses the ring into a batch compute on its shard's replica, so
  // this is the number that must scale with shard count (the
  // cross-shard-run scaling gate compares it between a 1-shard and a
  // 4-shard run of the same job).
  double gated_qps = 0.0;
  double gated_uncached_qps = 0.0;
  {
    const BatcherConfig* gated = nullptr;
    for (const BatcherConfig& config : configs)
      if (config.name == gated_config) gated = &config;
    serving::ServiceConfig service_config;
    service_config.max_batch_size = gated->max_batch_size;
    service_config.max_queue_delay_us = gated->max_queue_delay_us;
    service_config.cache_capacity = gated->cache ? 65536 : 0;
    serving::EstimatorService service(factory.Replicas(shards),
                                      service_config);
    RunClosedLoop(&service, workload, gated_clients, 1,
                  options.seed + 17);  // warm-up (fills the cache)
    for (int rep = 0; rep < repeats; ++rep) {
      const RunResult result = RunClosedLoop(
          &service, workload, gated_clients, rounds, options.seed + rep);
      gated_qps = std::max(gated_qps, result.qps);
    }
    std::cout << util::StrFormat(
        "\ngated steady-state qps (%s, %zu clients, best of %d): %.0f\n",
        gated_config.c_str(), gated_clients, repeats, gated_qps);
  }
  {
    serving::ServiceConfig service_config;
    service_config.max_batch_size = 64;
    service_config.max_queue_delay_us = 0;
    service_config.cache_capacity = 0;
    serving::EstimatorService service(factory.Replicas(shards),
                                      service_config);
    RunClosedLoop(&service, workload, std::min<size_t>(gated_clients, 4),
                  1, options.seed + 19);  // warm-up (scratch, pages)
    for (int rep = 0; rep < repeats; ++rep) {
      const RunResult result = RunClosedLoop(
          &service, workload, gated_clients, rounds, options.seed + rep);
      gated_uncached_qps = std::max(gated_uncached_qps, result.qps);
    }
    std::cout << util::StrFormat(
        "gated uncached qps (greedy, %zu clients, %zu shards, best of "
        "%d): %.0f\n",
        gated_clients, shards, repeats, gated_uncached_qps);
  }

  // Open loop at fractions of the serial baseline: latency under a
  // steady arrival stream, no client back-pressure.
  const std::vector<double> rate_fractions = {0.25, 0.5};
  std::ostringstream open_json;
  util::TablePrinter open_table("EstimatorService open loop (LUBM)");
  open_table.SetHeader(
      {"target qps", "achieved", "p50 us", "p99 us", "fill"});
  for (size_t i = 0; i < rate_fractions.size(); ++i) {
    const double target = serial_qps * rate_fractions[i];
    const size_t total = std::min<size_t>(
        workload.size() * static_cast<size_t>(rounds) * 4, 20000);
    serving::ServiceConfig service_config;
    service_config.max_batch_size = 64;
    service_config.max_queue_delay_us = 200;
    serving::EstimatorService service(factory.Replicas(shards),
                                      service_config);
    const RunResult result = RunOpenLoop(&service, workload, target,
                                         total, options.seed + 2000);
    open_table.AddRow(
        util::StrFormat("%.0f", target),
        {result.qps, result.stats.p50_us, result.stats.p99_us,
         result.stats.mean_batch_fill});
    open_json << (i == 0 ? "" : ",\n") << "    {\"target_qps\": "
              << target << ", " << StatsJson(result) << "}";
  }
  open_table.Print(std::cout);

  // Workload shift: the drift -> adapt -> hot-swap loop under traffic.
  // Replicas are AdaptiveLmkg instances bootstrapped with star models
  // only; clients settle on stars, then shift to chains. One synchronous
  // ModelLifecycle cycle (reproducibility — production runs it on a
  // background thread) drains the tap, trains the chain models on the
  // shadow off the serving path, swaps the replicas, and bumps the
  // cache epoch.
  double shift_pre_qps = 0.0, shift_post_qps = 0.0;
  double shift_pre_qerr = 0.0, shift_post_qerr = 0.0;
  double shift_adapt_seconds = 0.0;
  size_t shift_models_created = 0;
  uint64_t shift_stale_evictions = 0, shift_epoch = 0;
  {
    core::AdaptiveLmkgConfig aconfig;
    aconfig.s_config.hidden_dim = std::min<size_t>(options.s_hidden_dim, 64);
    aconfig.s_config.epochs = std::min(options.s_epochs, 6);
    aconfig.s_config.seed = options.seed;
    aconfig.train_queries = options.train_queries_per_combo;
    aconfig.workload_options.max_cardinality = options.max_cardinality;
    aconfig.monitor.min_observations = 30;
    aconfig.monitor.decay = 0.98;
    aconfig.initial_combos = {{Topology::kStar, 2}, {Topology::kStar, 3}};
    aconfig.seed = options.seed + 5;
    core::AdaptiveLmkg shadow(graph, aconfig);

    serving::ModelLifecycle::ReplicaFactory replica_factory =
        serving::MakeAdaptiveReplicaFactory(graph, aconfig);
    std::ostringstream boot;
    if (!shadow.Save(boot).ok()) {
      std::cerr << "[serving] shadow snapshot failed\n";
      std::exit(1);
    }
    std::vector<std::unique_ptr<core::CardinalityEstimator>> areplicas;
    for (size_t r = 0; r < shards; ++r)
      areplicas.push_back(replica_factory(boot.str()));

    serving::ServiceConfig shift_config;
    shift_config.max_batch_size = 64;
    shift_config.cache_capacity = 65536;
    shift_config.workload_tap_capacity = 1024;
    serving::EstimatorService service(std::move(areplicas), shift_config);
    serving::ModelLifecycleConfig lconfig;
    lconfig.background = false;
    lconfig.min_samples_per_cycle = 1;
    serving::ModelLifecycle lifecycle(&service, &shadow, replica_factory,
                                      lconfig);

    const size_t shift_clients = 4;
    // Settle on the star mix; the steady cycle must not churn anything.
    RunClosedLoop(&service, shift_star_queries, shift_clients, 1,
                  options.seed + 31);
    (void)lifecycle.RunOnce();

    // Mixed size order: the monitor weights recent observations, and a
    // size-sorted pass would make only the trailing combo look hot.
    {
      util::Pcg32 rng(options.seed + 37);
      rng.Shuffle(&shift_chain_tests);
    }
    auto median_qerror = [&] {
      std::vector<double> qerrors;
      qerrors.reserve(shift_chain_tests.size());
      for (const auto& lq : shift_chain_tests)
        qerrors.push_back(
            util::QError(service.Estimate(lq.query), lq.cardinality));
      return util::QErrorStats::Compute(std::move(qerrors)).median;
    };

    const RunResult pre = RunClosedLoop(&service, shift_chain_queries,
                                        shift_clients, rounds,
                                        options.seed + 33);
    shift_pre_qps = pre.qps;
    shift_pre_qerr = median_qerror();

    util::Stopwatch adapt_timer;
    const serving::LifecycleReport cycle = lifecycle.RunOnce();
    shift_adapt_seconds = adapt_timer.ElapsedSeconds();
    shift_models_created = cycle.adapt.created.size();
    if (!cycle.swapped)
      std::cerr << "[serving] WARNING: workload shift did not trigger a "
                   "swap\n";

    const RunResult post = RunClosedLoop(&service, shift_chain_queries,
                                         shift_clients, rounds,
                                         options.seed + 35);
    shift_post_qps = post.qps;
    shift_post_qerr = median_qerror();
    shift_stale_evictions = service.Stats().cache_stale_evictions;
    shift_epoch = service.epoch();

    util::TablePrinter shift_table(
        "Workload shift: drift -> adapt -> hot-swap (chains)");
    shift_table.SetHeader({"phase", "qps", "median q-error"});
    shift_table.AddRow("pre-swap", {shift_pre_qps, shift_pre_qerr});
    shift_table.AddRow("post-swap", {shift_post_qps, shift_post_qerr});
    shift_table.Print(std::cout);
    std::cout << util::StrFormat(
        "lifecycle: %zu models trained off-path in %.1fs, epoch %llu, "
        "%llu stale cache entries evicted\n",
        shift_models_created, shift_adapt_seconds,
        static_cast<unsigned long long>(shift_epoch),
        static_cast<unsigned long long>(shift_stale_evictions));
  }

  // Feedback loop: drift onto a FIXED star-2 working set the synthetic
  // training distribution never sampled, run twice under identical
  // serving + lifecycle configs — once with the loop closed (collector +
  // executor truth sink + feedback retrains), once open. Convergence is
  // the median q-error over the working set after each lifecycle cycle;
  // the gated ratio compares the two runs' final medians.
  const size_t fb_cycles = smoke ? 3 : 4;
  std::vector<double> fb_on_curve, fb_off_curve;
  size_t fb_incremental_swaps = 0, fb_pairs_drained = 0;
  size_t fb_deactivated = 0, fb_queries = 0;
  {
    // The drift working set: labeled star-2 queries from a seed disjoint
    // from every synthetic training seed the shadow uses.
    sampling::WorkloadGenerator::Options drift_opts;
    drift_opts.topology = Topology::kStar;
    drift_opts.query_size = 2;
    drift_opts.max_cardinality = options.max_cardinality;
    drift_opts.count = smoke ? 48 : 96;
    drift_opts.seed = options.seed + 271828;
    const std::vector<sampling::LabeledQuery> drift =
        generator.Generate(drift_opts);
    fb_queries = drift.size();

    auto run_drift = [&](bool with_feedback, std::vector<double>* curve) {
      core::AdaptiveLmkgConfig aconfig;
      aconfig.s_config.hidden_dim =
          std::min<size_t>(options.s_hidden_dim, 64);
      aconfig.s_config.epochs = std::min(options.s_epochs, 6);
      aconfig.s_config.seed = options.seed;
      aconfig.train_queries = options.train_queries_per_combo;
      aconfig.workload_options.max_cardinality = options.max_cardinality;
      // Freeze the pool: this phase isolates the FEEDBACK path (weights
      // change, pool doesn't), so every swap is the incremental one.
      aconfig.monitor.min_observations = 1u << 30;
      aconfig.initial_combos = {{Topology::kStar, 2}};
      aconfig.seed = options.seed + 11;
      core::AdaptiveLmkg shadow(graph, aconfig);

      core::IndependenceEstimator fallback(graph);
      serving::FeedbackCollector collector(&fallback,
                                           serving::FeedbackConfig{});
      query::Executor executor(graph);
      if (with_feedback)
        executor.SetTruthSink(serving::MakeExecutorTruthSink(&collector));

      serving::ModelLifecycle::ReplicaFactory replica_factory =
          serving::MakeAdaptiveReplicaFactory(graph, aconfig);
      std::ostringstream boot;
      if (!shadow.Save(boot).ok()) {
        std::cerr << "[serving] feedback shadow snapshot failed\n";
        std::exit(1);
      }
      std::vector<std::unique_ptr<core::CardinalityEstimator>> replicas;
      for (size_t r = 0; r < shards; ++r)
        replicas.push_back(replica_factory(boot.str()));

      serving::ServiceConfig fconfig;
      fconfig.max_batch_size = 64;
      fconfig.cache_capacity = 65536;
      fconfig.workload_tap_capacity = 1024;
      if (with_feedback) fconfig.feedback = &collector;
      serving::EstimatorService service(std::move(replicas), fconfig);

      serving::ModelLifecycleConfig lconfig;
      lconfig.background = false;
      lconfig.min_samples_per_cycle = 1;
      if (with_feedback) lconfig.feedback = &collector;
      serving::ModelLifecycle lifecycle(&service, &shadow, replica_factory,
                                        lconfig);

      auto median_qerror = [&] {
        std::vector<double> qerrors;
        qerrors.reserve(drift.size());
        for (const auto& lq : drift)
          qerrors.push_back(
              util::QError(service.Estimate(lq.query), lq.cardinality));
        return util::QErrorStats::Compute(std::move(qerrors)).median;
      };

      curve->push_back(median_qerror());  // pre-drift baseline
      for (size_t cycle = 0; cycle < fb_cycles; ++cycle) {
        for (const auto& lq : drift) {
          (void)service.Estimate(lq.query);
          // The closed loop's truth source: EXECUTE the query; the
          // executor's sink records the exact count against the served
          // estimate. The open-loop run skips execution — with no sink
          // installed the count would be pure wasted work.
          if (with_feedback) (void)executor.Count(lq.query);
        }
        (void)lifecycle.RunOnce();
        curve->push_back(median_qerror());
      }
      if (with_feedback) {
        fb_incremental_swaps = lifecycle.incremental_swaps();
        const serving::FeedbackStatsSnapshot stats = collector.Stats();
        fb_pairs_drained = stats.pairs_drained;
        fb_deactivated = stats.deactivated;
      }
    };
    run_drift(/*with_feedback=*/true, &fb_on_curve);
    run_drift(/*with_feedback=*/false, &fb_off_curve);

    util::TablePrinter fb_table(
        "Feedback loop: executor truths -> incremental retrain "
        "(star-2 drift, median q-error per cycle)");
    fb_table.SetHeader({"cycle", "feedback on", "feedback off"});
    for (size_t i = 0; i < fb_on_curve.size(); ++i)
      fb_table.AddRow(util::StrFormat("%zu", i),
                      {fb_on_curve[i], fb_off_curve[i]});
    fb_table.Print(std::cout);
    std::cout << util::StrFormat(
        "feedback loop: convergence ratio %.2fx (off/on final medians), "
        "%zu incremental swaps, %zu pairs drained, %zu deactivated\n",
        fb_off_curve.back() / fb_on_curve.back(), fb_incremental_swaps,
        fb_pairs_drained, fb_deactivated);
  }

  // SWDF correlated drift (non-gated accuracy track): the adaptation-win
  // scenario the LUBM phases cannot show — LUBM's generated triples are
  // too uniform for the independence fallback to be badly wrong, so
  // creating a model barely moves the q-error. SWDF's conference data is
  // skewed and its predicates correlate (author/paper/event cluster), so
  // when the workload drifts onto multi-pattern queries the fallback's
  // independence assumption underestimates hard and a freshly trained
  // model visibly wins.
  //
  // The drift is CORRELATED, not a step: over the phases the workload
  // mix slides from all star-2 (covered from boot) to all chain-3
  // (uncovered), topology and size moving together the way a real
  // optimizer's plan mix does. Each phase is served through one
  // AdaptiveLmkg (every estimate feeds its monitor), then Adapt() runs
  // the lifecycle policy once; mid-drift phases are served partly by the
  // fallback until the monitor flags chain-3 hot and a model is trained.
  // Per phase: the served median q-error vs the frozen independence
  // baseline on the same mix. After the last phase the fully-drifted mix
  // is re-scored to isolate the post-adaptation accuracy. Nothing here
  // is gated — the numbers exist to keep the adaptation win visible in
  // every bench-results artifact.
  const size_t drift_phases = smoke ? 4 : 6;
  std::ostringstream swdf_json;
  double swdf_post_adapt = 0.0, swdf_independence_final = 0.0;
  size_t swdf_models_created = 0;
  double swdf_scale = smoke ? 0.02 : 0.1;
  {
    rdf::Graph swdf =
        data::MakeDataset("swdf", swdf_scale, options.seed + 5);
    std::cerr << "[serving] swdf drift: " << rdf::GraphSummary(swdf)
              << "\n";
    sampling::WorkloadGenerator swdf_generator(swdf);
    const size_t per_phase = smoke ? 32 : 64;

    auto make_pool = [&](Topology topology, int size, uint64_t seed) {
      sampling::WorkloadGenerator::Options wopts;
      wopts.topology = topology;
      wopts.query_size = size;
      wopts.max_cardinality = options.max_cardinality;
      wopts.count = per_phase * drift_phases;
      wopts.seed = seed;
      return swdf_generator.Generate(wopts);
    };
    const std::vector<sampling::LabeledQuery> star_pool =
        make_pool(Topology::kStar, 2, options.seed + 314159);
    const std::vector<sampling::LabeledQuery> chain_pool =
        make_pool(Topology::kChain, 3, options.seed + 653589);

    core::AdaptiveLmkgConfig aconfig;
    aconfig.s_config.hidden_dim = std::min<size_t>(options.s_hidden_dim, 32);
    aconfig.s_config.epochs = std::min(options.s_epochs, 4);
    aconfig.s_config.seed = options.seed;
    aconfig.train_queries = smoke ? 80 : options.train_queries_per_combo;
    aconfig.workload_options.max_cardinality = options.max_cardinality;
    aconfig.monitor.min_observations = 10;
    aconfig.initial_combos = {{Topology::kStar, 2}};
    aconfig.seed = options.seed + 13;
    core::AdaptiveLmkg adaptive(swdf, aconfig);
    core::IndependenceEstimator independence(swdf);

    util::TablePrinter drift_table(
        "SWDF correlated drift: star-2 -> chain-3 mix "
        "(median q-error per phase, adaptive vs independence)");
    drift_table.SetHeader(
        {"phase", "chain share", "adaptive", "independence", "models"});

    size_t star_next = 0, chain_next = 0;
    std::vector<sampling::LabeledQuery> final_mix;
    bool swdf_first = true;
    for (size_t phase = 0; phase < drift_phases; ++phase) {
      const double chain_share =
          static_cast<double>(phase) / (drift_phases - 1);
      const size_t chains =
          static_cast<size_t>(chain_share * per_phase + 0.5);
      std::vector<sampling::LabeledQuery> mix;
      mix.reserve(per_phase);
      for (size_t i = 0; i < per_phase; ++i) {
        // Bresenham spread: exactly `chains` chain queries per phase,
        // interleaved evenly instead of bursted at one end.
        const bool take_chain =
            (i + 1) * chains / per_phase > i * chains / per_phase;
        if (take_chain && chain_next < chain_pool.size())
          mix.push_back(chain_pool[chain_next++]);
        else if (star_next < star_pool.size())
          mix.push_back(star_pool[star_next++]);
      }
      std::vector<double> adaptive_qerrors, independence_qerrors;
      adaptive_qerrors.reserve(mix.size());
      independence_qerrors.reserve(mix.size());
      for (const auto& lq : mix) {
        adaptive_qerrors.push_back(util::QError(
            adaptive.EstimateCardinality(lq.query), lq.cardinality));
        independence_qerrors.push_back(util::QError(
            independence.EstimateCardinality(lq.query), lq.cardinality));
      }
      const auto report = adaptive.Adapt();
      swdf_models_created += report.created.size();
      const double adaptive_median =
          util::QErrorStats::Compute(std::move(adaptive_qerrors)).median;
      const double independence_median =
          util::QErrorStats::Compute(std::move(independence_qerrors))
              .median;
      drift_table.AddRow(
          util::StrFormat("%zu", phase),
          {chain_share, adaptive_median, independence_median,
           static_cast<double>(adaptive.num_models())});
      swdf_json << (swdf_first ? "" : ",\n")
                << "    {\"chain_share\": " << chain_share
                << ", \"adaptive_median_qerror\": " << adaptive_median
                << ", \"independence_median_qerror\": "
                << independence_median
                << ", \"models\": " << adaptive.num_models() << "}";
      swdf_first = false;
      if (phase + 1 == drift_phases) final_mix = std::move(mix);
    }

    // Re-score the fully-drifted mix now that every Adapt() has run:
    // the steady-state accuracy of the adapted pool vs the fallback.
    std::vector<double> post_qerrors, ind_qerrors;
    for (const auto& lq : final_mix) {
      post_qerrors.push_back(util::QError(
          adaptive.EstimateCardinality(lq.query), lq.cardinality));
      ind_qerrors.push_back(util::QError(
          independence.EstimateCardinality(lq.query), lq.cardinality));
    }
    swdf_post_adapt =
        util::QErrorStats::Compute(std::move(post_qerrors)).median;
    swdf_independence_final =
        util::QErrorStats::Compute(std::move(ind_qerrors)).median;
    drift_table.Print(std::cout);
    std::cout << util::StrFormat(
        "swdf drift: post-adapt median q-error %.2f vs independence "
        "%.2f on the drifted mix, %zu models created\n",
        swdf_post_adapt, swdf_independence_final, swdf_models_created);
  }

  std::ofstream json(out_path);
  json << "{\n"
       << "  \"bench\": \"serving\",\n"
       << "  \"estimator\": \"LMKG-S\",\n"
       << "  \"dataset\": \"lubm\",\n"
       << "  \"simd_isa\": \"" << nn::SimdIsaName() << "\",\n"
       << "  \"scale\": " << options.dataset_scale << ",\n"
       << "  \"queries\": " << workload.size() << ",\n"
       << "  \"rounds\": " << rounds << ",\n"
       << "  \"shards\": " << shards << ",\n"
       << "  \"hardware_threads\": "
       << std::thread::hardware_concurrency() << ",\n"
       << "  \"serial_qps\": " << serial_qps << ",\n"
       << "  \"gated_config\": \"" << gated_config << "\",\n"
       << "  \"gated_clients\": " << gated_clients << ",\n"
       << "  \"gated_protocol\": \"steady-state (warm cache), best of "
       << repeats << " timings\",\n"
       << "  \"closed_loop_16_qps\": " << gated_qps << ",\n"
       << "  \"closed_loop_16_uncached_qps\": " << gated_uncached_qps
       << ",\n"
       << "  \"uncached_vs_serial\": "
       << (serial_qps > 0.0 ? gated_uncached_qps / serial_qps : 0.0)
       << ",\n"
       << "  \"closed_loop\": [\n"
       << closed_json.str() << "\n  ],\n"
       << "  \"open_loop\": [\n"
       << open_json.str() << "\n  ],\n"
       << "  \"workload_shift\": {\"clients\": 4, \"models_created\": "
       << shift_models_created
       << ", \"adapt_seconds\": " << shift_adapt_seconds
       << ", \"pre_swap_chain_qps\": " << shift_pre_qps
       << ", \"post_swap_chain_qps\": " << shift_post_qps
       << ", \"pre_swap_chain_median_qerror\": " << shift_pre_qerr
       << ", \"post_swap_chain_median_qerror\": " << shift_post_qerr
       << ", \"stale_cache_evictions\": " << shift_stale_evictions
       << ", \"model_epoch\": " << shift_epoch << "},\n"
       << "  \"feedback_loop\": {\"cycles\": " << fb_cycles
       << ", \"queries\": " << fb_queries
       << ", \"feedback_on_initial_median_qerror\": " << fb_on_curve.front()
       << ", \"feedback_on_final_median_qerror\": " << fb_on_curve.back()
       << ", \"feedback_off_initial_median_qerror\": "
       << fb_off_curve.front()
       << ", \"feedback_off_final_median_qerror\": " << fb_off_curve.back()
       << ", \"incremental_swaps\": " << fb_incremental_swaps
       << ", \"pairs_drained\": " << fb_pairs_drained
       << ", \"deactivated\": " << fb_deactivated
       << ", \"qerror_convergence_ratio\": "
       << (fb_on_curve.back() > 0.0
               ? fb_off_curve.back() / fb_on_curve.back()
               : 0.0)
       << "},\n"
       << "  \"swdf_drift\": {\"dataset\": \"swdf\", \"scale\": "
       << swdf_scale << ", \"gated\": false, \"phases\": [\n"
       << swdf_json.str() << "\n  ]"
       << ", \"post_adapt_median_qerror\": " << swdf_post_adapt
       << ", \"independence_final_median_qerror\": "
       << swdf_independence_final
       << ", \"models_created\": " << swdf_models_created << "}\n"
       << "}\n";
  std::cout << "\nwrote " << out_path << "\n";
  return 0;
}
