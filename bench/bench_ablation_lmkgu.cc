// Ablation: LMKG-U design choices.
//   (a) Training-data sampler: the paper's random-walk sampling vs the
//       exact uniform tuple sampler ("the main cause of inaccurate model
//       estimation is the quality of the samples", §VII-A / §VIII-C).
//   (b) Embedding width (the paper uses 32): size/accuracy trade-off.
#include <iostream>

#include "core/lmkg_u.h"
#include "data/dataset.h"
#include "eval/suite.h"
#include "sampling/workload.h"
#include "util/math.h"
#include "util/strings.h"
#include "util/table.h"

namespace {

using namespace lmkg;
using query::Topology;

util::QErrorStats EvalModel(
    core::LmkgU& model,
    const std::vector<sampling::LabeledQuery>& test) {
  std::vector<double> qerrors;
  for (const auto& lq : test) {
    if (!model.CanEstimate(lq.query)) continue;
    qerrors.push_back(util::QError(model.EstimateCardinality(lq.query),
                                   lq.cardinality));
  }
  return util::QErrorStats::Compute(std::move(qerrors));
}

}  // namespace

int main(int argc, char** argv) {
  eval::SuiteOptions options = eval::SuiteOptionsFromFlags(argc, argv);
  std::cout << "Ablation: LMKG-U sampler and embedding width (swdf "
               "profile, scale=" << options.dataset_scale << ")\n\n";

  rdf::Graph graph =
      data::MakeDataset("swdf", options.dataset_scale, options.seed);
  std::cerr << "[ablation] " << rdf::GraphSummary(graph) << "\n";

  sampling::WorkloadGenerator generator(graph);
  sampling::WorkloadGenerator::Options wopts;
  wopts.topology = Topology::kStar;
  wopts.query_size = 2;
  wopts.max_cardinality = options.max_cardinality;
  wopts.count = options.test_queries_per_combo;
  wopts.seed = options.seed + 2;
  auto test = generator.Generate(wopts);

  // (a) sampler quality.
  {
    util::TablePrinter table("(a) training-data sampler (star-2)");
    table.SetHeader({"sampler", "avg q-error", "median", "max"});
    for (bool random_walk : {false, true}) {
      core::LmkgUConfig config;
      config.hidden_dim = options.u_hidden_dim;
      config.embedding_dim = options.u_embedding_dim;
      config.train_samples = options.u_train_samples;
      config.sample_count = options.u_sample_count;
      config.epochs = options.u_epochs;
      config.use_random_walk_sampler = random_walk;
      config.seed = options.seed + 7;
      core::LmkgU model(graph, Topology::kStar, 2, config);
      std::cerr << "[ablation] training with "
                << (random_walk ? "random-walk" : "exact-uniform")
                << " sampler...\n";
      model.Train();
      util::QErrorStats stats = EvalModel(model, test);
      table.AddRow({random_walk ? "random walk (paper §VII-A)"
                                : "exact uniform (ours)",
                    util::FormatValue(stats.mean),
                    util::FormatValue(stats.median),
                    util::FormatValue(stats.max)});
    }
    table.Print(std::cout);
    std::cout << "\n";
  }

  // (b) embedding width.
  {
    util::TablePrinter table("(b) embedding width (star-2)");
    table.SetHeader({"embedding dim", "model bytes", "avg q-error",
                     "median"});
    for (size_t dim : {size_t{8}, size_t{32}, size_t{64}}) {
      core::LmkgUConfig config;
      config.hidden_dim = options.u_hidden_dim;
      config.embedding_dim = dim;
      config.train_samples = options.u_train_samples;
      config.sample_count = options.u_sample_count;
      config.epochs = options.u_epochs;
      config.seed = options.seed + 8;
      core::LmkgU model(graph, Topology::kStar, 2, config);
      std::cerr << "[ablation] training embedding dim " << dim << "...\n";
      model.Train();
      util::QErrorStats stats = EvalModel(model, test);
      table.AddRow({std::to_string(dim),
                    util::HumanBytes(model.MemoryBytes()),
                    util::FormatValue(stats.mean),
                    util::FormatValue(stats.median)});
    }
    table.Print(std::cout);
  }
  std::cout << "\nExpected: the exact uniform sampler matches or beats "
               "random-walk sampling (the paper names sample quality as "
               "LMKG-U's main limiter); larger embeddings grow the model "
               "with diminishing accuracy returns (paper uses 32).\n";
  return 0;
}
