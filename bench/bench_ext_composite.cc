// Extension bench (paper §I + §V-A1 future work): the SG-Encoding claims
// to represent "different query topologies ... in a single model", but the
// paper's "proof of concept and detailed evaluation is left for our future
// work". This bench supplies that evaluation: mixed star / chain / tree /
// star+chain-compound workloads estimated by
//
//   * LMKG-S single SG model trained WITH composite shapes,
//   * LMKG-S single SG model trained on stars+chains only (the SG input
//     can represent trees, but the model never saw one),
//   * LMKG-S with pattern-bound encoders (kByType) — composite queries
//     fall back to the framework's decomposition + uniform join combiner,
//   * the sampling baselines that accept arbitrary BGPs (wj, jsub, impr).
#include <iostream>
#include <memory>
#include <vector>

#include "baselines/impr.h"
#include "baselines/jsub.h"
#include "baselines/wander_join.h"
#include "core/lmkg.h"
#include "data/dataset.h"
#include "eval/harness.h"
#include "eval/suite.h"
#include "query/topology.h"
#include "rdf/graph.h"
#include "sampling/composite.h"
#include "util/flags.h"
#include "util/table.h"

namespace {

using namespace lmkg;

core::LmkgConfig BaseConfig(const eval::SuiteOptions& options) {
  core::LmkgConfig config;
  config.kind = core::ModelKind::kSupervised;
  config.query_sizes = {2, 3, 5};
  config.s_config.hidden_dim = options.s_hidden_dim;
  config.s_config.epochs = options.s_epochs;
  config.train_queries_per_combo = options.train_queries_per_combo;
  config.workload_options.max_cardinality = options.max_cardinality;
  config.seed = options.seed;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  eval::SuiteOptions options = eval::SuiteOptionsFromFlags(argc, argv);
  util::Flags flags(argc, argv);
  const std::string dataset = flags.GetString("dataset", "swdf");
  const size_t per_shape =
      static_cast<size_t>(flags.GetInt("queries", 80));

  rdf::Graph graph =
      data::MakeDataset(dataset, options.dataset_scale, options.seed);
  std::cout << "Extension: one SG model across query topologies ("
            << dataset << ", scale=" << options.dataset_scale << ")\n"
            << rdf::GraphSummary(graph) << "\n\n";

  // --- test workloads: one pool per shape --------------------------------
  struct ShapePool {
    std::string label;
    std::vector<sampling::LabeledQuery> queries;
  };
  std::vector<ShapePool> pools;
  {
    sampling::WorkloadGenerator generator(graph);
    sampling::WorkloadGenerator::Options wopts;
    wopts.count = per_shape;
    wopts.max_cardinality = options.max_cardinality;
    wopts.seed = options.seed + 101;
    wopts.topology = query::Topology::kStar;
    wopts.query_size = 3;
    pools.push_back({"star-3", generator.Generate(wopts)});
    wopts.topology = query::Topology::kChain;
    wopts.seed = options.seed + 102;
    pools.push_back({"chain-3", generator.Generate(wopts)});

    sampling::CompositeWorkloadGenerator composite(graph);
    sampling::CompositeWorkloadGenerator::Options copts;
    copts.count = per_shape;
    copts.max_cardinality = options.max_cardinality;
    copts.shape =
        sampling::CompositeWorkloadGenerator::Options::Shape::kTree;
    copts.query_size = 3;
    copts.seed = options.seed + 103;
    pools.push_back({"tree-3", composite.Generate(copts)});
    copts.query_size = 5;
    copts.seed = options.seed + 104;
    pools.push_back({"tree-5", composite.Generate(copts)});
    copts.shape =
        sampling::CompositeWorkloadGenerator::Options::Shape::kStarChain;
    copts.star_size = 2;
    copts.chain_size = 2;
    copts.seed = options.seed + 105;
    pools.push_back({"star2+chain2", composite.Generate(copts)});
  }
  for (const auto& pool : pools)
    std::cerr << "[ext-composite] " << pool.label << ": "
              << pool.queries.size() << " test queries\n";

  // --- estimators ----------------------------------------------------------
  std::vector<std::pair<std::string,
                        std::unique_ptr<core::CardinalityEstimator>>>
      estimators;
  {
    core::LmkgConfig config = BaseConfig(options);
    config.grouping = core::Grouping::kSingleModel;
    config.train_composites = true;
    auto lmkg = std::make_unique<core::Lmkg>(graph, config);
    std::cerr << "[ext-composite] training SG+composite model...\n";
    lmkg->BuildModels();
    estimators.emplace_back("SG trained w/ composites", std::move(lmkg));
  }
  {
    core::LmkgConfig config = BaseConfig(options);
    config.grouping = core::Grouping::kSingleModel;
    config.train_composites = false;
    auto lmkg = std::make_unique<core::Lmkg>(graph, config);
    std::cerr << "[ext-composite] training SG star/chain-only model...\n";
    lmkg->BuildModels();
    estimators.emplace_back("SG star/chain only", std::move(lmkg));
  }
  {
    core::LmkgConfig config = BaseConfig(options);
    config.grouping = core::Grouping::kByType;
    auto lmkg = std::make_unique<core::Lmkg>(graph, config);
    std::cerr << "[ext-composite] training pattern-bound models...\n";
    lmkg->BuildModels();
    estimators.emplace_back("pattern-bound + decomposition",
                            std::move(lmkg));
  }
  {
    baselines::WanderJoinEstimator::Options wj;
    wj.num_walks = options.num_walks;
    wj.seed = options.seed;
    estimators.emplace_back(
        "wj", std::make_unique<baselines::WanderJoinEstimator>(graph, wj));
  }
  {
    baselines::JsubEstimator::Options jsub;
    jsub.num_walks = options.num_walks;
    jsub.seed = options.seed;
    estimators.emplace_back(
        "jsub", std::make_unique<baselines::JsubEstimator>(graph, jsub));
  }
  {
    baselines::ImprEstimator::Options impr;
    impr.num_walks = options.num_walks;
    impr.seed = options.seed;
    estimators.emplace_back(
        "impr", std::make_unique<baselines::ImprEstimator>(graph, impr));
  }

  // --- evaluation ----------------------------------------------------------
  util::TablePrinter table("avg q-error by query shape — " + dataset);
  std::vector<std::string> header = {"estimator"};
  for (const auto& pool : pools) header.push_back(pool.label);
  table.SetHeader(header);
  for (auto& [name, estimator] : estimators) {
    std::vector<double> row;
    for (const auto& pool : pools) {
      eval::EvalResult result = eval::Evaluate(estimator.get(),
                                               pool.queries);
      row.push_back(result.qerror.mean);
    }
    table.AddRow(name, row);
  }
  table.Print(std::cout);
  std::cout
      << "\nExpected shape: the composite-trained SG model carries its "
         "star/chain accuracy over to trees and compounds; the same model "
         "without composite training degrades there; decomposition pays "
         "the uniform-join penalty on composite shapes; the sampling "
         "baselines handle every shape but with walk-variance errors.\n";
  return 0;
}
