#include "sampling/composite.h"

#include <gtest/gtest.h>

#include <set>

#include "query/executor.h"
#include "query/topology.h"
#include "test_util.h"

namespace lmkg::sampling {
namespace {

using query::ClassifyDetailedTopology;
using query::DetailedTopology;

// --- BoundTree -> Query ------------------------------------------------------

TEST(CompositeTest, ToQueryBuildsOnePatternPerEdge) {
  BoundTree tree;
  tree.nodes = {1, 2, 3, 4};
  tree.parents = {-1, 0, 0, 1};
  tree.predicates = {7, 8, 9};
  query::Query q = ToQuery(tree);
  ASSERT_EQ(q.size(), 3u);
  EXPECT_TRUE(q.fully_bound());
  EXPECT_EQ(q.patterns[0].s.value, 1u);
  EXPECT_EQ(q.patterns[0].o.value, 2u);
  EXPECT_EQ(q.patterns[2].s.value, 2u);
  EXPECT_EQ(q.patterns[2].o.value, 4u);
}

TEST(CompositeTest, SampledTreeExistsInGraph) {
  rdf::Graph graph = testing::MakeRandomGraph(60, 6, 500, 11);
  CompositeSampler sampler(graph);
  query::Executor executor(graph);
  util::Pcg32 rng(3, 1);
  int sampled = 0;
  for (int i = 0; i < 200 && sampled < 40; ++i) {
    auto tree = sampler.SampleTree(4, rng);
    if (!tree.has_value()) continue;
    ++sampled;
    // Every edge of the sampled tree is a triple of the graph, so the
    // fully bound query matches exactly once.
    query::Query q = ToQuery(*tree);
    EXPECT_EQ(executor.Count(q), 1u) << query::QueryToString(q);
  }
  EXPECT_GE(sampled, 40);
}

TEST(CompositeTest, SampledTreeHasDistinctNodes) {
  rdf::Graph graph = testing::MakeRandomGraph(40, 5, 400, 12);
  CompositeSampler sampler(graph);
  util::Pcg32 rng(5, 2);
  for (int i = 0; i < 100; ++i) {
    auto tree = sampler.SampleTree(5, rng);
    if (!tree.has_value()) continue;
    std::set<rdf::TermId> distinct(tree->nodes.begin(), tree->nodes.end());
    EXPECT_EQ(distinct.size(), tree->nodes.size());
    EXPECT_EQ(tree->nodes.size(), 6u);
  }
}

TEST(CompositeTest, StarChainShape) {
  rdf::Graph graph = testing::MakeRandomGraph(50, 6, 600, 13);
  CompositeSampler sampler(graph);
  util::Pcg32 rng(7, 3);
  int sampled = 0;
  for (int i = 0; i < 300 && sampled < 30; ++i) {
    auto tree = sampler.SampleStarChain(3, 2, rng);
    if (!tree.has_value()) continue;
    ++sampled;
    ASSERT_EQ(tree->size(), 5u);
    // Root has exactly three children; the chain hangs off one of them.
    int root_children = 0;
    for (size_t j = 1; j < tree->parents.size(); ++j)
      if (tree->parents[j] == 0) ++root_children;
    EXPECT_EQ(root_children, 3);
  }
  EXPECT_GE(sampled, 30);
}

// --- workload generation -----------------------------------------------------

TEST(CompositeTest, GeneratedWorkloadIsTreeShapedAndLabeledExactly) {
  rdf::Graph graph = testing::MakeRandomGraph(80, 8, 900, 21);
  CompositeWorkloadGenerator generator(graph);
  CompositeWorkloadGenerator::Options options;
  options.shape = CompositeWorkloadGenerator::Options::Shape::kTree;
  options.query_size = 3;
  options.count = 40;
  options.seed = 5;
  auto workload = generator.Generate(options);
  ASSERT_GE(workload.size(), 10u);
  query::Executor executor(graph);
  for (const auto& lq : workload) {
    EXPECT_EQ(ClassifyDetailedTopology(lq.query), DetailedTopology::kTree)
        << query::QueryToString(lq.query);
    EXPECT_GE(lq.query.num_vars, 1);
    EXPECT_EQ(lq.topology, query::Topology::kComposite);
    EXPECT_EQ(lq.size, 3);
    EXPECT_DOUBLE_EQ(lq.cardinality, executor.Cardinality(lq.query));
    EXPECT_GE(lq.cardinality, 1.0);
  }
}

TEST(CompositeTest, GeneratedWorkloadIsDeterministicInSeed) {
  rdf::Graph graph = testing::MakeRandomGraph(60, 6, 700, 22);
  CompositeWorkloadGenerator generator(graph);
  CompositeWorkloadGenerator::Options options;
  options.query_size = 4;
  options.count = 20;
  options.seed = 9;
  auto a = generator.Generate(options);
  auto b = generator.Generate(options);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(query::QueryToString(a[i].query),
              query::QueryToString(b[i].query));
    EXPECT_DOUBLE_EQ(a[i].cardinality, b[i].cardinality);
  }
}

TEST(CompositeTest, StarChainWorkload) {
  rdf::Graph graph = testing::MakeRandomGraph(80, 8, 1000, 23);
  CompositeWorkloadGenerator generator(graph);
  CompositeWorkloadGenerator::Options options;
  options.shape = CompositeWorkloadGenerator::Options::Shape::kStarChain;
  options.star_size = 2;
  options.chain_size = 2;
  options.count = 30;
  options.seed = 3;
  auto workload = generator.Generate(options);
  ASSERT_GE(workload.size(), 5u);
  for (const auto& lq : workload) {
    EXPECT_EQ(lq.size, 4);
    EXPECT_EQ(ClassifyDetailedTopology(lq.query), DetailedTopology::kTree);
  }
}

TEST(CompositeTest, WorkloadQueriesAreDistinct) {
  rdf::Graph graph = testing::MakeRandomGraph(60, 6, 700, 24);
  CompositeWorkloadGenerator generator(graph);
  CompositeWorkloadGenerator::Options options;
  options.query_size = 3;
  options.count = 50;
  options.seed = 17;
  auto workload = generator.Generate(options);
  std::set<std::string> keys;
  for (const auto& lq : workload) keys.insert(query::QueryToString(lq.query));
  EXPECT_EQ(keys.size(), workload.size());
}

// Property sweep: every sampled star-chain compound of any split is
// classified kTree and its bound form matches the graph exactly once.
class StarChainSplitTest
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(StarChainSplitTest, CompoundIsTreeAndExists) {
  auto [star_k, chain_k] = GetParam();
  rdf::Graph graph = testing::MakeRandomGraph(70, 7, 900, 31);
  CompositeSampler sampler(graph);
  query::Executor executor(graph);
  util::Pcg32 rng(41, 5);
  int sampled = 0;
  for (int i = 0; i < 400 && sampled < 15; ++i) {
    auto tree = sampler.SampleStarChain(star_k, chain_k, rng);
    if (!tree.has_value()) continue;
    ++sampled;
    query::Query q = ToQuery(*tree);
    EXPECT_EQ(executor.Count(q), 1u);
    EXPECT_EQ(ClassifyDetailedTopology(q), DetailedTopology::kTree);
  }
  EXPECT_GE(sampled, 10);
}

INSTANTIATE_TEST_SUITE_P(Splits, StarChainSplitTest,
                         ::testing::Values(std::pair<int, int>{2, 1},
                                           std::pair<int, int>{2, 3},
                                           std::pair<int, int>{3, 2},
                                           std::pair<int, int>{4, 4}));

}  // namespace
}  // namespace lmkg::sampling
