#include <gtest/gtest.h>

#include <vector>

#include "query/query.h"
#include "query/sparql_parser.h"
#include "test_util.h"
#include "util/random.h"

namespace lmkg::query {
namespace {

PatternTerm B(rdf::TermId id) { return PatternTerm::Bound(id); }
PatternTerm V(int v) { return PatternTerm::Variable(v); }

// --- builders and validity ---------------------------------------------------

TEST(QueryTest, MakeStarQuery) {
  Query q = MakeStarQuery(V(0), {{B(1), B(2)}, {B(3), V(1)}});
  ASSERT_EQ(q.size(), 2u);
  EXPECT_EQ(q.num_vars, 2);
  EXPECT_TRUE(q.Valid());
  EXPECT_EQ(q.patterns[0].s, V(0));
  EXPECT_EQ(q.patterns[1].s, V(0));
  EXPECT_FALSE(q.fully_bound());
}

TEST(QueryTest, MakeChainQuery) {
  Query q = MakeChainQuery({V(0), V(1), B(5)}, {B(1), B(2)});
  ASSERT_EQ(q.size(), 2u);
  EXPECT_TRUE(q.Valid());
  // o of pattern 0 is s of pattern 1.
  EXPECT_EQ(q.patterns[0].o, q.patterns[1].s);
}

TEST(QueryTest, FullyBound) {
  Query q = MakeStarQuery(B(1), {{B(1), B(2)}});
  EXPECT_TRUE(q.fully_bound());
  EXPECT_EQ(q.num_vars, 0);
}

TEST(QueryTest, NormalizeVariablesRenumbersDensely) {
  Query q;
  TriplePattern t;
  t.s = V(7);
  t.p = B(1);
  t.o = V(3);
  q.patterns.push_back(t);
  NormalizeVariables(&q);
  EXPECT_EQ(q.num_vars, 2);
  EXPECT_EQ(q.patterns[0].s.var, 0);
  EXPECT_EQ(q.patterns[0].o.var, 1);
  EXPECT_TRUE(q.Valid());
}

TEST(QueryTest, ValidRejectsMixedVarSpaces) {
  // Variable 0 used both as node and as predicate.
  Query q;
  TriplePattern t;
  t.s = V(0);
  t.p = V(0);
  t.o = B(1);
  q.patterns.push_back(t);
  q.num_vars = 1;
  EXPECT_FALSE(q.Valid());
}

TEST(QueryTest, ValidRejectsUnusedVar) {
  Query q = MakeStarQuery(V(0), {{B(1), B(2)}});
  q.num_vars = 2;  // var 1 never appears
  EXPECT_FALSE(q.Valid());
}

// --- topology classification ---------------------------------------------------

TEST(TopologyTest, SinglePattern) {
  Query q = MakeStarQuery(V(0), {{B(1), B(2)}});
  EXPECT_EQ(ClassifyTopology(q), Topology::kSingle);
}

TEST(TopologyTest, Star) {
  Query q = MakeStarQuery(V(0), {{B(1), B(2)}, {B(2), V(1)}, {B(3), V(2)}});
  EXPECT_EQ(ClassifyTopology(q), Topology::kStar);
  StarView star;
  ASSERT_TRUE(AsStar(q, &star));
  EXPECT_EQ(star.size(), 3u);
  EXPECT_EQ(star.center(), V(0));
  EXPECT_EQ(star.predicate(2), B(3));
  EXPECT_EQ(star.object(1), V(1));
}

TEST(TopologyTest, Chain) {
  Query q = MakeChainQuery({V(0), V(1), V(2)}, {B(1), B(2)});
  EXPECT_EQ(ClassifyTopology(q), Topology::kChain);
  ChainScratch scratch;
  ChainView chain;
  ASSERT_TRUE(AsChain(q, &scratch, &chain));
  EXPECT_EQ(chain.size(), 2u);
  EXPECT_EQ(chain.num_nodes(), 3u);
}

TEST(TopologyTest, ChainDetectedWithShuffledPatternOrder) {
  Query q = MakeChainQuery({V(0), V(1), V(2), V(3)}, {B(1), B(2), B(3)});
  std::swap(q.patterns[0], q.patterns[2]);
  EXPECT_EQ(ClassifyTopology(q), Topology::kChain);
  ChainScratch scratch;
  ChainView chain;
  ASSERT_TRUE(AsChain(q, &scratch, &chain));
  // Walk order restored.
  EXPECT_EQ(chain.predicate(0), B(1));
  EXPECT_EQ(chain.predicate(1), B(2));
  EXPECT_EQ(chain.predicate(2), B(3));
  EXPECT_EQ(chain.node(0), V(0));
  EXPECT_EQ(chain.node(3), V(3));
}

TEST(TopologyTest, LongShuffledChainCanonicalizesIdentically) {
  // A 300-pattern chain in a deterministic shuffled order: the O(k) hash
  // head-detection must restore exactly the construction walk order (the
  // pre-hash O(k^2) scan's answer) — both node and predicate sequences.
  constexpr int kEdges = 300;
  std::vector<PatternTerm> nodes, preds;
  for (int i = 0; i <= kEdges; ++i) nodes.push_back(V(i));
  for (int i = 0; i < kEdges; ++i)
    preds.push_back(B(static_cast<rdf::TermId>(i + 1)));
  Query q = MakeChainQuery(nodes, preds);
  util::Pcg32 rng(99, /*stream=*/0xc4a1);
  for (size_t i = q.patterns.size() - 1; i > 0; --i)
    std::swap(q.patterns[i], q.patterns[rng.UniformInt(
                                 static_cast<uint32_t>(i + 1))]);
  ChainScratch scratch;
  ChainView chain;
  ASSERT_TRUE(AsChain(q, &scratch, &chain));
  ASSERT_EQ(chain.size(), static_cast<size_t>(kEdges));
  for (int i = 0; i < kEdges; ++i) {
    EXPECT_EQ(chain.predicate(i), B(static_cast<rdf::TermId>(i + 1)))
        << "predicate " << i;
    EXPECT_EQ(chain.node(i), V(i)) << "node " << i;
  }
  EXPECT_EQ(chain.node(kEdges), V(kEdges));
}

TEST(TopologyTest, CompositeStarPlusChain) {
  // ?x p ?y . ?x q ?z . ?z r ?w  — star at ?x with a chain tail.
  Query q;
  TriplePattern t1{V(0), B(1), V(1)};
  TriplePattern t2{V(0), B(2), V(2)};
  TriplePattern t3{V(2), B(3), V(3)};
  q.patterns = {t1, t2, t3};
  NormalizeVariables(&q);
  EXPECT_EQ(ClassifyTopology(q), Topology::kComposite);
  StarView star;
  EXPECT_FALSE(AsStar(q, &star));
  ChainScratch scratch;
  ChainView chain;
  EXPECT_FALSE(AsChain(q, &scratch, &chain));
}

TEST(TopologyTest, CycleIsNotChain) {
  // ?x p ?y . ?y p ?x
  Query q;
  TriplePattern t1{V(0), B(1), V(1)};
  TriplePattern t2{V(1), B(1), V(0)};
  q.patterns = {t1, t2};
  NormalizeVariables(&q);
  ChainScratch scratch;
  ChainView chain;
  EXPECT_FALSE(AsChain(q, &scratch, &chain));
  EXPECT_EQ(ClassifyTopology(q), Topology::kComposite);
}

TEST(TopologyTest, SameSubjectBoundIdIsStar) {
  Query q;
  TriplePattern t1{B(5), B(1), V(0)};
  TriplePattern t2{B(5), B(2), V(1)};
  q.patterns = {t1, t2};
  NormalizeVariables(&q);
  EXPECT_EQ(ClassifyTopology(q), Topology::kStar);
}

TEST(TopologyTest, TopologyNames) {
  EXPECT_STREQ(TopologyName(Topology::kStar), "star");
  EXPECT_STREQ(TopologyName(Topology::kChain), "chain");
  EXPECT_STREQ(TopologyName(Topology::kSingle), "single");
  EXPECT_STREQ(TopologyName(Topology::kComposite), "composite");
}

TEST(QueryTest, ToStringShowsVarsAndIds) {
  Query q = MakeStarQuery(V(0), {{B(3), B(7)}});
  EXPECT_EQ(QueryToString(q), "(?0 3 7)");
}

// --- SPARQL parser --------------------------------------------------------------

class SparqlTest : public ::testing::Test {
 protected:
  SparqlTest() : graph_(lmkg::testing::MakePaperExampleGraph()) {}
  rdf::Graph graph_;
};

TEST_F(SparqlTest, ParsesPaperStarExample) {
  // The motivating query of the paper (§V).
  auto result = ParseSparql(
      "SELECT ?x WHERE { ?x <hasAuthor> <StephenKing> ; "
      "<genre> <Horror> . }",
      graph_);
  ASSERT_TRUE(result.ok()) << result.status().message();
  const Query& q = result.value();
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(ClassifyTopology(q), Topology::kStar);
  EXPECT_EQ(q.num_vars, 1);
  EXPECT_EQ(q.var_names[0], "x");
}

TEST_F(SparqlTest, ParsesPaperChainExample) {
  auto result = ParseSparql(
      "SELECT ?x ?y WHERE { ?x <hasAuthor> ?y . ?y <bornIn> <USA> . }",
      graph_);
  ASSERT_TRUE(result.ok()) << result.status().message();
  const Query& q = result.value();
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(ClassifyTopology(q), Topology::kChain);
}

TEST_F(SparqlTest, BareWordsAndStarProjection) {
  auto result = ParseSparql(
      "SELECT * WHERE { ?b hasAuthor StephenKing . }", graph_);
  ASSERT_TRUE(result.ok()) << result.status().message();
  EXPECT_EQ(result.value().size(), 1u);
}

TEST_F(SparqlTest, UnknownTermIsError) {
  auto result =
      ParseSparql("SELECT ?x WHERE { ?x <hasAuthor> <Nobody> . }", graph_);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("Nobody"), std::string::npos);
}

TEST_F(SparqlTest, SyntaxErrors) {
  EXPECT_FALSE(ParseSparql("WHERE { ?x <p> ?y . }", graph_).ok());
  EXPECT_FALSE(ParseSparql("SELECT ?x { ?x <p> ?y . }", graph_).ok());
  EXPECT_FALSE(ParseSparql("SELECT ?x WHERE { }", graph_).ok());
  EXPECT_FALSE(
      ParseSparql("SELECT ?x WHERE { ?x <hasAuthor> . }", graph_).ok());
  EXPECT_FALSE(ParseSparql("SELECT ?x WHERE { ?x <hasAuthor> ?y ",
                           graph_)
                   .ok());
}

TEST_F(SparqlTest, VariableReuseSharesIds) {
  auto result = ParseSparql(
      "SELECT ?x WHERE { ?x <hasAuthor> ?a . ?x <genre> <Horror> . }",
      graph_);
  ASSERT_TRUE(result.ok());
  const Query& q = result.value();
  EXPECT_EQ(q.num_vars, 2);
  EXPECT_EQ(q.patterns[0].s.var, q.patterns[1].s.var);
}

TEST_F(SparqlTest, PredicateVariableAllowed) {
  auto result =
      ParseSparql("SELECT ?p WHERE { <IT> ?p <Horror> . }", graph_);
  ASSERT_TRUE(result.ok()) << result.status().message();
  EXPECT_TRUE(result.value().patterns[0].p.is_var());
}

TEST_F(SparqlTest, MixedVarSpacesRejected) {
  auto result = ParseSparql(
      "SELECT ?x WHERE { ?x ?x <Horror> . }", graph_);
  EXPECT_FALSE(result.ok());
}

}  // namespace
}  // namespace lmkg::query
