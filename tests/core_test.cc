#include <gtest/gtest.h>

#include <cmath>

#include "core/lmkg.h"
#include "core/lmkg_s.h"
#include "core/lmkg_u.h"
#include "core/outlier_buffer.h"
#include "core/single_pattern.h"
#include "query/executor.h"
#include "query/topology.h"
#include "sampling/composite.h"
#include "sampling/workload.h"
#include "test_util.h"
#include "util/math.h"

namespace lmkg::core {
namespace {

using query::PatternTerm;
using query::Query;
using query::Topology;

PatternTerm B(rdf::TermId id) { return PatternTerm::Bound(id); }
PatternTerm V(int v) { return PatternTerm::Variable(v); }

std::vector<sampling::LabeledQuery> MakeWorkload(const rdf::Graph& graph,
                                                 Topology topology, int size,
                                                 size_t count,
                                                 uint64_t seed) {
  sampling::WorkloadGenerator generator(graph);
  sampling::WorkloadGenerator::Options options;
  options.topology = topology;
  options.query_size = size;
  options.count = count;
  options.seed = seed;
  return generator.Generate(options);
}

double MedianQError(CardinalityEstimator* estimator,
                    const std::vector<sampling::LabeledQuery>& queries) {
  std::vector<double> qerrors;
  for (const auto& lq : queries) {
    if (!estimator->CanEstimate(lq.query)) continue;
    qerrors.push_back(util::QError(
        estimator->EstimateCardinality(lq.query), lq.cardinality));
  }
  return util::QErrorStats::Compute(std::move(qerrors)).median;
}

// --- SinglePatternEstimator ---------------------------------------------------

TEST(SinglePatternTest, MatchesExecutorExactly) {
  rdf::Graph graph = lmkg::testing::MakeRandomGraph(20, 4, 150, 1);
  SinglePatternEstimator estimator(graph);
  query::Executor executor(graph);
  util::Pcg32 rng(2);
  for (int i = 0; i < 30; ++i) {
    Query q;
    int next_var = 0;
    auto term = [&](uint32_t domain) {
      if (rng.Bernoulli(0.5)) return B(1 + rng.UniformInt(domain));
      return V(next_var++);
    };
    query::TriplePattern t;
    t.s = term(20);
    t.p = term(4);
    t.o = term(20);
    q.patterns.push_back(t);
    query::NormalizeVariables(&q);
    if (!q.Valid()) continue;
    ASSERT_TRUE(estimator.CanEstimate(q));
    EXPECT_DOUBLE_EQ(estimator.EstimateCardinality(q),
                     executor.Cardinality(q));
  }
}

TEST(SinglePatternTest, RejectsMultiPattern) {
  rdf::Graph graph = lmkg::testing::MakeRandomGraph(10, 2, 30, 1);
  SinglePatternEstimator estimator(graph);
  Query q = query::MakeStarQuery(V(0), {{B(1), V(1)}, {B(2), V(2)}});
  EXPECT_FALSE(estimator.CanEstimate(q));
}

// --- LMKG-S ---------------------------------------------------------------------

class LmkgSTest : public ::testing::Test {
 protected:
  LmkgSTest() : graph_(lmkg::testing::MakeRandomGraph(40, 5, 500, 3)) {}

  LmkgSConfig SmallConfig() {
    LmkgSConfig config;
    config.hidden_dim = 48;
    config.num_hidden_layers = 2;
    config.epochs = 60;
    config.dropout = 0.0;
    config.seed = 7;
    return config;
  }

  rdf::Graph graph_;
};

TEST_F(LmkgSTest, TrainsAndEstimatesStarQueries) {
  auto train = MakeWorkload(graph_, Topology::kStar, 2, 300, 11);
  auto test = MakeWorkload(graph_, Topology::kStar, 2, 60, 12);
  ASSERT_GT(train.size(), 100u);
  ASSERT_GT(test.size(), 20u);

  LmkgS model(encoding::MakeStarEncoder(graph_, 2,
                                        encoding::TermEncoding::kBinary),
              SmallConfig());
  auto stats = model.Train(train);
  EXPECT_EQ(stats.examples, train.size());
  ASSERT_FALSE(stats.epoch_losses.empty());
  // Loss must come down substantially.
  EXPECT_LT(stats.epoch_losses.back(), stats.epoch_losses.front());

  double median = MedianQError(&model, test);
  EXPECT_LT(median, 6.0);
  EXPECT_GT(model.MemoryBytes(), 1000u);
}

TEST_F(LmkgSTest, EpochCallbackFires) {
  auto train = MakeWorkload(graph_, Topology::kStar, 2, 100, 13);
  LmkgSConfig config = SmallConfig();
  config.epochs = 5;
  LmkgS model(encoding::MakeStarEncoder(graph_, 2,
                                        encoding::TermEncoding::kBinary),
              config);
  int calls = 0;
  model.Train(train, [&](int epoch, double loss) {
    ++calls;
    EXPECT_EQ(epoch, calls);
    EXPECT_GE(loss, 0.0);
  });
  EXPECT_EQ(calls, 5);
}

TEST_F(LmkgSTest, MseLossAlsoTrains) {
  auto train = MakeWorkload(graph_, Topology::kStar, 2, 150, 14);
  LmkgSConfig config = SmallConfig();
  config.loss = LossKind::kMse;
  config.epochs = 40;
  LmkgS model(encoding::MakeStarEncoder(graph_, 2,
                                        encoding::TermEncoding::kBinary),
              config);
  auto stats = model.Train(train);
  EXPECT_LT(stats.epoch_losses.back(), stats.epoch_losses.front());
}

TEST_F(LmkgSTest, CanEstimateFollowsEncoder) {
  LmkgS model(encoding::MakeStarEncoder(graph_, 2,
                                        encoding::TermEncoding::kBinary),
              SmallConfig());
  Query star = query::MakeStarQuery(V(0), {{B(1), V(1)}, {B(2), V(2)}});
  Query chain = query::MakeChainQuery({V(0), V(1), V(2)}, {B(1), B(2)});
  EXPECT_TRUE(model.CanEstimate(star));
  EXPECT_FALSE(model.CanEstimate(chain));
}

TEST_F(LmkgSTest, EstimateBeforeTrainAborts) {
  LmkgS model(encoding::MakeStarEncoder(graph_, 2,
                                        encoding::TermEncoding::kBinary),
              SmallConfig());
  Query q = query::MakeStarQuery(V(0), {{B(1), V(1)}, {B(2), V(2)}});
  EXPECT_DEATH(model.EstimateCardinality(q), "before Train");
}

// --- LMKG-U ---------------------------------------------------------------------

class LmkgUTest : public ::testing::Test {
 protected:
  LmkgUTest() : graph_(lmkg::testing::MakeRandomGraph(25, 3, 160, 5)) {}

  LmkgUConfig SmallConfig() {
    LmkgUConfig config;
    config.embedding_dim = 8;
    config.hidden_dim = 48;
    config.num_blocks = 1;
    config.epochs = 25;
    config.train_samples = 3000;
    config.sample_count = 80;
    config.seed = 9;
    return config;
  }

  rdf::Graph graph_;
};

TEST_F(LmkgUTest, PopulationMatchesSampler) {
  LmkgU model(graph_, Topology::kStar, 2, SmallConfig());
  sampling::StarPopulation pop(graph_, 2);
  EXPECT_DOUBLE_EQ(model.population_size(), pop.size());
}

TEST_F(LmkgUTest, TrainReducesNll) {
  LmkgU model(graph_, Topology::kStar, 2, SmallConfig());
  auto stats = model.Train();
  ASSERT_GE(stats.epoch_nll.size(), 2u);
  EXPECT_LT(stats.epoch_nll.back(), stats.epoch_nll.front());
}

TEST_F(LmkgUTest, EstimatesStarWorkloadAccurately) {
  LmkgU model(graph_, Topology::kStar, 2, SmallConfig());
  model.Train();
  auto test = MakeWorkload(graph_, Topology::kStar, 2, 40, 21);
  ASSERT_GT(test.size(), 10u);
  double median = MedianQError(&model, test);
  EXPECT_LT(median, 6.0);
}

TEST_F(LmkgUTest, EstimatesChainWorkloadAccurately) {
  LmkgU model(graph_, Topology::kChain, 2, SmallConfig());
  model.Train();
  auto test = MakeWorkload(graph_, Topology::kChain, 2, 40, 22);
  ASSERT_GT(test.size(), 10u);
  double median = MedianQError(&model, test);
  EXPECT_LT(median, 6.0);
}

TEST_F(LmkgUTest, AllWildcardQueryReturnsPopulation) {
  LmkgU model(graph_, Topology::kStar, 2, SmallConfig());
  model.Train();
  Query q =
      query::MakeStarQuery(V(0), {{V(1), V(2)}, {V(3), V(4)}});
  // Careful: predicate positions are vars 1 and 3 — vars in both spaces.
  ASSERT_TRUE(model.CanEstimate(q));
  EXPECT_DOUBLE_EQ(model.EstimateCardinality(q), model.population_size());
}

TEST_F(LmkgUTest, SizeMismatchRejected) {
  LmkgU model(graph_, Topology::kStar, 2, SmallConfig());
  Query star3 = query::MakeStarQuery(
      V(0), {{B(1), V(1)}, {B(2), V(2)}, {B(3), V(3)}});
  Query chain2 = query::MakeChainQuery({V(0), V(1), V(2)}, {B(1), B(2)});
  EXPECT_FALSE(model.CanEstimate(star3));
  EXPECT_FALSE(model.CanEstimate(chain2));
}

TEST_F(LmkgUTest, RandomWalkSamplerModeTrains) {
  LmkgUConfig config = SmallConfig();
  config.use_random_walk_sampler = true;
  config.epochs = 5;
  LmkgU model(graph_, Topology::kStar, 2, config);
  auto stats = model.Train();
  EXPECT_EQ(stats.epoch_nll.size(), 5u);
  EXPECT_GT(model.population_size(), 0.0);  // computed lazily
}

// --- OutlierBuffer ---------------------------------------------------------------

class ConstantEstimator : public CardinalityEstimator {
 public:
  double EstimateCardinality(const Query&) override { return 42.0; }
  bool CanEstimate(const Query&) const override { return true; }
  std::string name() const override { return "const"; }
  size_t MemoryBytes() const override { return 1; }
};

TEST(OutlierBufferTest, ServesBufferedQueriesExactly) {
  // Hand-built workload with structurally distinct queries (different
  // bound predicates), so canonical keys cannot collide.
  std::vector<sampling::LabeledQuery> workload;
  for (int i = 0; i < 8; ++i) {
    sampling::LabeledQuery lq;
    lq.query = query::MakeStarQuery(
        V(0), {{B(static_cast<rdf::TermId>(i + 1)), V(1)},
               {B(static_cast<rdf::TermId>(i + 2)), V(2)}});
    lq.cardinality = 100.0 * (i + 1);  // query 7 is the largest
    workload.push_back(std::move(lq));
  }
  ConstantEstimator inner;
  OutlierBuffer buffer(&inner, 3);
  buffer.Populate(workload);
  EXPECT_EQ(buffer.buffered(), 3u);

  // Top-3 by cardinality answered exactly; the rest fall through.
  for (int i = 0; i < 8; ++i) {
    double est = buffer.EstimateCardinality(workload[i].query);
    if (i >= 5) {
      EXPECT_DOUBLE_EQ(est, workload[i].cardinality);
    } else {
      EXPECT_DOUBLE_EQ(est, 42.0);
    }
  }
  EXPECT_EQ(buffer.name(), "const+buffer");
  EXPECT_GT(buffer.MemoryBytes(), inner.MemoryBytes());
}

TEST(OutlierBufferTest, CanonicalKeyIsOrderAndNamingInvariant) {
  Query a = query::MakeStarQuery(V(0), {{B(1), B(2)}, {B(3), B(4)}});
  Query b = query::MakeStarQuery(V(5), {{B(3), B(4)}, {B(1), B(2)}});
  query::NormalizeVariables(&b);
  EXPECT_EQ(OutlierBuffer::CanonicalKey(a), OutlierBuffer::CanonicalKey(b));
  Query c = query::MakeStarQuery(V(0), {{B(1), B(2)}, {B(3), B(5)}});
  EXPECT_NE(OutlierBuffer::CanonicalKey(a), OutlierBuffer::CanonicalKey(c));
}

// --- Lmkg facade ---------------------------------------------------------------

class LmkgFacadeTest : public ::testing::Test {
 protected:
  LmkgFacadeTest() : graph_(lmkg::testing::MakeRandomGraph(30, 4, 250, 8)) {}

  LmkgConfig SmallConfig(ModelKind kind, Grouping grouping) {
    LmkgConfig config;
    config.kind = kind;
    config.grouping = grouping;
    config.query_sizes = {2, 3};
    config.s_config.hidden_dim = 32;
    config.s_config.epochs = 15;
    config.train_queries_per_combo = 120;
    config.u_config.embedding_dim = 8;
    config.u_config.hidden_dim = 32;
    config.u_config.num_blocks = 1;
    config.u_config.epochs = 6;
    config.u_config.train_samples = 1200;
    config.u_config.sample_count = 32;
    config.seed = 17;
    return config;
  }

  rdf::Graph graph_;
};

TEST_F(LmkgFacadeTest, SupervisedGroupingsBuildExpectedModelCounts) {
  struct Case {
    Grouping grouping;
    size_t models;
  };
  for (Case c : {Case{Grouping::kSingleModel, 1},
                 Case{Grouping::kByType, 2},
                 Case{Grouping::kBySize, 1},  // sizes {2,3} fit one group
                 Case{Grouping::kSpecialized, 4}}) {
    Lmkg lmkg(graph_, SmallConfig(ModelKind::kSupervised, c.grouping));
    lmkg.BuildModels();
    EXPECT_EQ(lmkg.num_models(), c.models)
        << GroupingName(c.grouping);
  }
}

TEST_F(LmkgFacadeTest, UnsupervisedBuildsPerTypeAndSize) {
  Lmkg lmkg(graph_,
            SmallConfig(ModelKind::kUnsupervised, Grouping::kSpecialized));
  lmkg.BuildModels();
  EXPECT_EQ(lmkg.num_models(), 4u);  // {star, chain} x {2, 3}
}

TEST_F(LmkgFacadeTest, RoutesQueriesAndEstimates) {
  Lmkg lmkg(graph_,
            SmallConfig(ModelKind::kSupervised, Grouping::kBySize));
  lmkg.BuildModels();
  auto star_test = MakeWorkload(graph_, Topology::kStar, 2, 20, 41);
  auto chain_test = MakeWorkload(graph_, Topology::kChain, 3, 20, 42);
  for (const auto& lq : star_test) {
    double est = lmkg.EstimateCardinality(lq.query);
    EXPECT_TRUE(std::isfinite(est));
    EXPECT_GE(est, 0.0);
  }
  for (const auto& lq : chain_test) {
    EXPECT_TRUE(std::isfinite(lmkg.EstimateCardinality(lq.query)));
  }
  EXPECT_GT(lmkg.MemoryBytes(), 0u);
}

TEST_F(LmkgFacadeTest, SinglePatternAnsweredExactly) {
  Lmkg lmkg(graph_,
            SmallConfig(ModelKind::kSupervised, Grouping::kBySize));
  lmkg.BuildModels();
  Query q;
  q.patterns.push_back({V(0), B(1), V(1)});
  query::NormalizeVariables(&q);
  query::Executor executor(graph_);
  EXPECT_DOUBLE_EQ(lmkg.EstimateCardinality(q), executor.Cardinality(q));
}

TEST_F(LmkgFacadeTest, CompositeQueryDecomposes) {
  Lmkg lmkg(graph_,
            SmallConfig(ModelKind::kSupervised, Grouping::kBySize));
  lmkg.BuildModels();
  // Star at ?x + chain hop from one of its objects: composite.
  Query q;
  q.patterns.push_back({V(0), B(1), V(1)});
  q.patterns.push_back({V(0), B(2), V(2)});
  q.patterns.push_back({V(2), B(3), V(3)});
  query::NormalizeVariables(&q);
  ASSERT_EQ(query::ClassifyTopology(q), Topology::kComposite);
  double est = lmkg.EstimateCardinality(q);
  EXPECT_TRUE(std::isfinite(est));
  EXPECT_GE(est, 0.0);
}

TEST_F(LmkgFacadeTest, OversizeQueryDecomposesThroughChunking) {
  Lmkg lmkg(graph_,
            SmallConfig(ModelKind::kSupervised, Grouping::kBySize));
  lmkg.BuildModels();
  // A star of size 5 exceeds the configured sizes {2,3}: must still
  // produce a finite estimate via chunk decomposition.
  std::vector<std::pair<PatternTerm, PatternTerm>> pairs;
  for (int i = 0; i < 5; ++i)
    pairs.emplace_back(B(1 + (i % 4)), V(i + 1));
  Query q = query::MakeStarQuery(V(0), pairs);
  double est = lmkg.EstimateCardinality(q);
  EXPECT_TRUE(std::isfinite(est));
}

TEST_F(LmkgFacadeTest, TrainsOnProvidedSampleWorkload) {
  LmkgConfig config = SmallConfig(ModelKind::kSupervised, Grouping::kBySize);
  Lmkg lmkg(graph_, config);
  auto workload = MakeWorkload(graph_, Topology::kStar, 2, 200, 51);
  auto chains = MakeWorkload(graph_, Topology::kChain, 2, 200, 52);
  workload.insert(workload.end(), chains.begin(), chains.end());
  lmkg.BuildModels(workload);
  EXPECT_EQ(lmkg.num_models(), 1u);
}

TEST_F(LmkgFacadeTest, CompositeTrainingServesTreesThroughTheSgModel) {
  LmkgConfig config = SmallConfig(ModelKind::kSupervised, Grouping::kBySize);
  config.train_composites = true;
  config.composite_train_queries = 60;
  Lmkg lmkg(graph_, config);
  lmkg.BuildModels();
  ASSERT_EQ(lmkg.num_models(), 1u);
  // A genuine tree of 3 edges fits the SG encoder (sizes {2,3} => capacity
  // 4 nodes / 3 edges) and is answered by the model, not by decomposition.
  Query q = query::MakeTreeQuery({V(0), V(1), V(2), V(3)}, {-1, 0, 0, 1},
                                 {B(1), B(2), B(3)});
  EXPECT_TRUE(lmkg.model(0)->CanEstimate(q));
  double est = lmkg.EstimateCardinality(q);
  EXPECT_TRUE(std::isfinite(est));
  EXPECT_GE(est, 0.0);
}

TEST_F(LmkgFacadeTest, CompositeTrainingIgnoredForPatternBoundGroupings) {
  LmkgConfig config = SmallConfig(ModelKind::kSupervised, Grouping::kByType);
  config.train_composites = true;  // no SG group: flag must be a no-op
  Lmkg lmkg(graph_, config);
  lmkg.BuildModels();
  ASSERT_EQ(lmkg.num_models(), 2u);
  Query q = query::MakeTreeQuery({V(0), V(1), V(2), V(3)}, {-1, 0, 0, 1},
                                 {B(1), B(2), B(3)});
  // The pattern-bound models cannot encode a tree; the facade still
  // estimates it (decomposition path).
  EXPECT_FALSE(lmkg.model(0)->CanEstimate(q));
  EXPECT_FALSE(lmkg.model(1)->CanEstimate(q));
  double est = lmkg.EstimateCardinality(q);
  EXPECT_TRUE(std::isfinite(est));
}

TEST_F(LmkgFacadeTest, CompositeTrainingImprovesTreeAccuracy) {
  // Same configuration with and without composite training data; compare
  // median q-error on a held-out tree workload.
  sampling::CompositeWorkloadGenerator generator(graph_);
  sampling::CompositeWorkloadGenerator::Options copts;
  copts.query_size = 3;
  copts.count = 60;
  copts.seed = 99;
  auto trees = generator.Generate(copts);
  ASSERT_GE(trees.size(), 20u);

  LmkgConfig with = SmallConfig(ModelKind::kSupervised, Grouping::kBySize);
  with.train_composites = true;
  with.composite_train_queries = 120;
  Lmkg trained(graph_, with);
  trained.BuildModels();

  LmkgConfig without = SmallConfig(ModelKind::kSupervised,
                                   Grouping::kBySize);
  Lmkg untrained(graph_, without);
  untrained.BuildModels();

  double with_q = MedianQError(&trained, trees);
  double without_q = MedianQError(&untrained, trees);
  // The composite-trained model should not be meaningfully worse; allow
  // slack for the small training budget.
  EXPECT_LE(with_q, without_q * 1.5)
      << "with=" << with_q << " without=" << without_q;
}

}  // namespace
}  // namespace lmkg::core

