#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

#include "query/executor.h"
#include "sampling/bound_pattern.h"
#include "sampling/population.h"
#include "sampling/random_walk.h"
#include "sampling/workload.h"
#include "test_util.h"
#include "util/math.h"

namespace lmkg::sampling {
namespace {

using query::Topology;

// --- term sequences ------------------------------------------------------------

TEST(BoundPatternTest, StarTermSequenceLayout) {
  BoundStar star;
  star.center = 7;
  star.edges = {{1, 2}, {3, 4}};
  auto seq = ToTermSequence(star);
  EXPECT_EQ(seq, (std::vector<rdf::TermId>{7, 1, 2, 3, 4}));
  EXPECT_FALSE(StarPositionIsPredicate(0));
  EXPECT_TRUE(StarPositionIsPredicate(1));
  EXPECT_FALSE(StarPositionIsPredicate(2));
  EXPECT_TRUE(StarPositionIsPredicate(3));
}

TEST(BoundPatternTest, ChainTermSequenceLayout) {
  BoundChain chain;
  chain.nodes = {5, 6, 7};
  chain.predicates = {1, 2};
  auto seq = ToTermSequence(chain);
  EXPECT_EQ(seq, (std::vector<rdf::TermId>{5, 1, 6, 2, 7}));
  EXPECT_FALSE(ChainPositionIsPredicate(0));
  EXPECT_TRUE(ChainPositionIsPredicate(1));
}

TEST(BoundPatternTest, ToQueryIsFullyBound) {
  BoundStar star;
  star.center = 1;
  star.edges = {{1, 2}};
  query::Query q = ToQuery(star);
  EXPECT_TRUE(q.fully_bound());
  EXPECT_EQ(query::ClassifyTopology(q), Topology::kSingle);
  BoundChain chain;
  chain.nodes = {1, 2, 3};
  chain.predicates = {1, 1};
  query::Query cq = ToQuery(chain);
  EXPECT_TRUE(cq.fully_bound());
}

// --- populations ------------------------------------------------------------------

TEST(StarPopulationTest, SizeIsSumOfDegreePowers) {
  rdf::Graph graph = lmkg::testing::MakeRandomGraph(10, 3, 40, 3);
  for (int k : {1, 2, 3}) {
    StarPopulation pop(graph, k);
    double expected = 0.0;
    for (rdf::TermId s : graph.subjects())
      expected +=
          std::pow(static_cast<double>(graph.OutDegree(s)), k);
    EXPECT_DOUBLE_EQ(pop.size(), expected);
  }
}

TEST(StarPopulationTest, SamplesAreValidPatterns) {
  rdf::Graph graph = lmkg::testing::MakeRandomGraph(10, 3, 40, 4);
  StarPopulation pop(graph, 3);
  util::Pcg32 rng(1);
  for (int i = 0; i < 200; ++i) {
    BoundStar star = pop.SampleUniform(rng);
    EXPECT_EQ(star.edges.size(), 3u);
    for (const auto& e : star.edges)
      EXPECT_TRUE(graph.HasTriple(star.center, e.p, e.o));
  }
}

TEST(StarPopulationTest, UniformOverTuples) {
  // Tiny graph where the tuple space is enumerable: subject 1 has 2
  // out-edges, subject 2 has 1. Star-2 tuples: 1 contributes 4, 2
  // contributes 1 => N = 5; each specific tuple has probability 1/5.
  rdf::Graph graph;
  graph.AddTripleIds(1, 1, 3);
  graph.AddTripleIds(1, 2, 4);
  graph.AddTripleIds(2, 1, 3);
  graph.Finalize();
  StarPopulation pop(graph, 2);
  EXPECT_DOUBLE_EQ(pop.size(), 5.0);
  util::Pcg32 rng(9);
  std::map<std::vector<rdf::TermId>, int> counts;
  const int n = 50000;
  for (int i = 0; i < n; ++i)
    ++counts[ToTermSequence(pop.SampleUniform(rng))];
  ASSERT_EQ(counts.size(), 5u);
  for (const auto& [seq, c] : counts)
    EXPECT_NEAR(static_cast<double>(c) / n, 0.2, 0.01);
}

TEST(ChainPopulationTest, WalkCountsMatchBruteForce) {
  rdf::Graph graph = lmkg::testing::MakeRandomGraph(8, 2, 25, 5);
  ChainPopulation pop(graph, 2);
  // Brute force: count all 2-step walks.
  double walks = 0;
  for (const auto& t : graph.triples())
    walks += static_cast<double>(graph.OutDegree(t.o));
  EXPECT_DOUBLE_EQ(pop.size(), walks);
}

TEST(ChainPopulationTest, SamplesAreRealWalks) {
  rdf::Graph graph = lmkg::testing::MakeRandomGraph(10, 3, 60, 6);
  ChainPopulation pop(graph, 3);
  util::Pcg32 rng(2);
  for (int i = 0; i < 200; ++i) {
    BoundChain chain = pop.SampleUniform(rng);
    ASSERT_EQ(chain.nodes.size(), 4u);
    for (size_t j = 0; j < 3; ++j)
      EXPECT_TRUE(graph.HasTriple(chain.nodes[j], chain.predicates[j],
                                  chain.nodes[j + 1]));
  }
}

TEST(ChainPopulationTest, UniformOverWalks) {
  // Path graph 1->2->3 and 1->4->5: exactly two 2-walks.
  rdf::Graph graph;
  graph.AddTripleIds(1, 1, 2);
  graph.AddTripleIds(2, 1, 3);
  graph.AddTripleIds(1, 2, 4);
  graph.AddTripleIds(4, 1, 5);
  graph.Finalize();
  ChainPopulation pop(graph, 2);
  EXPECT_DOUBLE_EQ(pop.size(), 2.0);
  util::Pcg32 rng(3);
  int first = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i)
    if (pop.SampleUniform(rng).nodes[1] == 2) ++first;
  EXPECT_NEAR(static_cast<double>(first) / n, 0.5, 0.02);
}

// --- random walk sampler ------------------------------------------------------------

TEST(RandomWalkTest, StarSamplesAreValid) {
  rdf::Graph graph = lmkg::testing::MakeRandomGraph(10, 3, 50, 7);
  RandomWalkSampler sampler(graph);
  util::Pcg32 rng(4);
  int successes = 0;
  for (int i = 0; i < 100; ++i) {
    auto star = sampler.SampleStar(2, rng);
    if (!star.has_value()) continue;
    ++successes;
    for (const auto& e : star->edges)
      EXPECT_TRUE(graph.HasTriple(star->center, e.p, e.o));
  }
  EXPECT_GT(successes, 50);
}

TEST(RandomWalkTest, ChainSamplesAreValidOrNull) {
  rdf::Graph graph = lmkg::testing::MakeRandomGraph(10, 3, 50, 8);
  RandomWalkSampler sampler(graph);
  util::Pcg32 rng(5);
  int successes = 0;
  for (int i = 0; i < 200; ++i) {
    auto chain = sampler.SampleChain(3, rng);
    if (!chain.has_value()) continue;
    ++successes;
    for (size_t j = 0; j < 3; ++j)
      EXPECT_TRUE(graph.HasTriple(chain->nodes[j], chain->predicates[j],
                                  chain->nodes[j + 1]));
  }
  EXPECT_GT(successes, 20);
}

// --- workload generator ------------------------------------------------------------

class WorkloadTest : public ::testing::Test {
 protected:
  WorkloadTest() : graph_(lmkg::testing::MakeRandomGraph(30, 4, 300, 9)) {}
  rdf::Graph graph_;
};

TEST_F(WorkloadTest, GeneratesRequestedStarWorkload) {
  WorkloadGenerator generator(graph_);
  WorkloadGenerator::Options options;
  options.topology = Topology::kStar;
  options.query_size = 2;
  options.count = 50;
  options.seed = 1;
  auto queries = generator.Generate(options);
  EXPECT_GT(queries.size(), 30u);
  query::Executor executor(graph_);
  for (const auto& lq : queries) {
    EXPECT_EQ(lq.topology, Topology::kStar);
    EXPECT_EQ(lq.size, 2);
    EXPECT_EQ(lq.query.size(), 2u);
    EXPECT_GE(lq.query.num_vars, 1);  // at least one unbound variable
    // Predicates bound by default (competitor limitation, §VIII).
    for (const auto& t : lq.query.patterns) EXPECT_TRUE(t.p.bound());
    // Label matches the exact executor.
    EXPECT_EQ(lq.cardinality, executor.Cardinality(lq.query));
    EXPECT_GE(lq.cardinality, 1.0);
  }
}

TEST_F(WorkloadTest, GeneratesChainWorkload) {
  WorkloadGenerator generator(graph_);
  WorkloadGenerator::Options options;
  options.topology = Topology::kChain;
  options.query_size = 3;
  options.count = 40;
  options.seed = 2;
  auto queries = generator.Generate(options);
  EXPECT_GT(queries.size(), 20u);
  query::ChainScratch scratch;
  for (const auto& lq : queries) {
    EXPECT_EQ(lq.query.size(), 3u);
    query::ChainView chain;
    EXPECT_TRUE(query::AsChain(lq.query, &scratch, &chain));
  }
}

TEST_F(WorkloadTest, DeterministicInSeed) {
  WorkloadGenerator generator(graph_);
  WorkloadGenerator::Options options;
  options.count = 20;
  options.seed = 3;
  auto a = generator.Generate(options);
  auto b = generator.Generate(options);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(query::QueryToString(a[i].query),
              query::QueryToString(b[i].query));
    EXPECT_EQ(a[i].cardinality, b[i].cardinality);
  }
}

TEST_F(WorkloadTest, NoDuplicateQueries) {
  WorkloadGenerator generator(graph_);
  WorkloadGenerator::Options options;
  options.count = 60;
  options.seed = 4;
  auto queries = generator.Generate(options);
  std::set<std::string> keys;
  for (const auto& lq : queries)
    EXPECT_TRUE(keys.insert(query::QueryToString(lq.query)).second);
}

TEST_F(WorkloadTest, RespectsMaxCardinality) {
  WorkloadGenerator generator(graph_);
  WorkloadGenerator::Options options;
  options.count = 40;
  options.max_cardinality = 25;
  options.seed = 5;
  auto queries = generator.Generate(options);
  for (const auto& lq : queries) EXPECT_LE(lq.cardinality, 25.0);
}

TEST_F(WorkloadTest, RandomWalkModeWorks) {
  WorkloadGenerator generator(graph_);
  WorkloadGenerator::Options options;
  options.count = 30;
  options.use_random_walk = true;
  options.seed = 6;
  auto queries = generator.Generate(options);
  EXPECT_GT(queries.size(), 10u);
}

TEST_F(WorkloadTest, UnboundPredicatesWhenAllowed) {
  WorkloadGenerator generator(graph_);
  WorkloadGenerator::Options options;
  options.count = 60;
  options.allow_unbound_predicates = true;
  options.unbind_predicate_prob = 0.9;
  options.seed = 7;
  auto queries = generator.Generate(options);
  bool saw_unbound_predicate = false;
  for (const auto& lq : queries)
    for (const auto& t : lq.query.patterns)
      if (t.p.is_var()) saw_unbound_predicate = true;
  EXPECT_TRUE(saw_unbound_predicate);
}

TEST_F(WorkloadTest, BucketBalancedSpreadsResultSizes) {
  WorkloadGenerator generator(graph_);
  WorkloadGenerator::Options options;
  options.count = 80;
  options.bucket_balanced = true;
  options.seed = 8;
  auto queries = generator.Generate(options);
  std::map<int, int> buckets;
  for (const auto& lq : queries)
    ++buckets[util::ResultSizeBucket(lq.cardinality)];
  // More than one bucket must be populated.
  EXPECT_GE(buckets.size(), 2u);
}

}  // namespace
}  // namespace lmkg::sampling
