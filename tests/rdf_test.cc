#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>

#include "rdf/graph.h"
#include "rdf/ntriples.h"
#include "rdf/term_dictionary.h"
#include "test_util.h"

namespace lmkg::rdf {
namespace {

// --- TermDictionary ----------------------------------------------------------

TEST(TermDictionaryTest, InternAssignsDenseIdsFromOne) {
  TermDictionary dict;
  EXPECT_EQ(dict.InternNode("a"), 1u);
  EXPECT_EQ(dict.InternNode("b"), 2u);
  EXPECT_EQ(dict.InternNode("a"), 1u);  // idempotent
  EXPECT_EQ(dict.InternPredicate("p"), 1u);  // separate id space
  EXPECT_EQ(dict.num_nodes(), 2u);
  EXPECT_EQ(dict.num_predicates(), 1u);
}

TEST(TermDictionaryTest, FindAndNameRoundTrip) {
  TermDictionary dict;
  TermId a = dict.InternNode("node/a");
  TermId p = dict.InternPredicate("pred/p");
  EXPECT_EQ(dict.FindNode("node/a"), std::optional<TermId>(a));
  EXPECT_EQ(dict.FindPredicate("pred/p"), std::optional<TermId>(p));
  EXPECT_EQ(dict.FindNode("missing"), std::nullopt);
  EXPECT_EQ(dict.NodeName(a), "node/a");
  EXPECT_EQ(dict.PredicateName(p), "pred/p");
}

TEST(TermDictionaryDeathTest, BadIdAborts) {
  TermDictionary dict;
  dict.InternNode("a");
  EXPECT_DEATH(dict.NodeName(0), "bad node id");
  EXPECT_DEATH(dict.NodeName(2), "bad node id");
}

TEST(TermDictionaryTest, MemoryGrowsWithContent) {
  TermDictionary dict;
  size_t empty = dict.MemoryBytes();
  for (int i = 0; i < 100; ++i)
    dict.InternNode("some/fairly/long/node/name/" + std::to_string(i));
  EXPECT_GT(dict.MemoryBytes(), empty + 100 * 20);
}

// --- Graph -------------------------------------------------------------------

TEST(GraphTest, DeduplicatesTriples) {
  Graph graph;
  graph.AddTripleIds(1, 1, 2);
  graph.AddTripleIds(1, 1, 2);
  graph.AddTripleIds(1, 1, 3);
  graph.Finalize();
  EXPECT_EQ(graph.num_triples(), 2u);
}

TEST(GraphTest, TriplesSortedAfterFinalize) {
  Graph graph;
  graph.AddTripleIds(3, 1, 1);
  graph.AddTripleIds(1, 2, 2);
  graph.AddTripleIds(1, 1, 5);
  graph.Finalize();
  ASSERT_EQ(graph.num_triples(), 3u);
  EXPECT_EQ(graph.triples()[0], (Triple{1, 1, 5}));
  EXPECT_EQ(graph.triples()[1], (Triple{1, 2, 2}));
  EXPECT_EQ(graph.triples()[2], (Triple{3, 1, 1}));
}

TEST(GraphDeathTest, AccessBeforeFinalizeAborts) {
  Graph graph;
  graph.AddTripleIds(1, 1, 2);
  EXPECT_DEATH(graph.OutEdges(1), "before Finalize");
}

TEST(GraphDeathTest, AddAfterFinalizeAborts) {
  Graph graph;
  graph.AddTripleIds(1, 1, 2);
  graph.Finalize();
  EXPECT_DEATH(graph.AddTripleIds(1, 1, 3), "AddTriple after Finalize");
}

TEST(GraphTest, OutEdgesSortedAndComplete) {
  Graph graph;
  graph.AddTripleIds(1, 2, 3);
  graph.AddTripleIds(1, 1, 4);
  graph.AddTripleIds(1, 1, 2);
  graph.AddTripleIds(2, 1, 1);
  graph.Finalize();
  auto edges = graph.OutEdges(1);
  ASSERT_EQ(edges.size(), 3u);
  EXPECT_EQ(edges[0], (PredicateObject{1, 2}));
  EXPECT_EQ(edges[1], (PredicateObject{1, 4}));
  EXPECT_EQ(edges[2], (PredicateObject{2, 3}));
  EXPECT_TRUE(graph.OutEdges(3).empty());
  EXPECT_TRUE(graph.OutEdges(999).empty());  // out of range is safe
}

TEST(GraphTest, InEdgesSortedAndComplete) {
  Graph graph;
  graph.AddTripleIds(3, 2, 1);
  graph.AddTripleIds(2, 1, 1);
  graph.AddTripleIds(4, 1, 1);
  graph.Finalize();
  auto edges = graph.InEdges(1);
  ASSERT_EQ(edges.size(), 3u);
  EXPECT_EQ(edges[0], (PredicateSubject{1, 2}));
  EXPECT_EQ(edges[1], (PredicateSubject{1, 4}));
  EXPECT_EQ(edges[2], (PredicateSubject{2, 3}));
}

TEST(GraphTest, PredicatePairs) {
  Graph graph;
  graph.AddTripleIds(2, 1, 3);
  graph.AddTripleIds(1, 1, 2);
  graph.AddTripleIds(1, 2, 2);
  graph.Finalize();
  auto pairs = graph.PredicatePairs(1);
  ASSERT_EQ(pairs.size(), 2u);
  EXPECT_EQ(pairs[0], (SubjectObject{1, 2}));
  EXPECT_EQ(pairs[1], (SubjectObject{2, 3}));
  EXPECT_EQ(graph.PredicatePairs(2).size(), 1u);
  EXPECT_TRUE(graph.PredicatePairs(3).empty());
}

TEST(GraphTest, EdgeRangeLookupsAndHasTriple) {
  Graph graph;
  graph.AddTripleIds(1, 1, 2);
  graph.AddTripleIds(1, 1, 3);
  graph.AddTripleIds(1, 2, 2);
  graph.Finalize();
  EXPECT_EQ(graph.OutEdgesWithPredicate(1, 1).size(), 2u);
  EXPECT_EQ(graph.OutEdgesWithPredicate(1, 2).size(), 1u);
  EXPECT_TRUE(graph.OutEdgesWithPredicate(1, 3).empty());
  EXPECT_EQ(graph.InEdgesWithPredicate(2, 1).size(), 1u);
  EXPECT_TRUE(graph.HasTriple(1, 1, 3));
  EXPECT_FALSE(graph.HasTriple(1, 2, 3));
  EXPECT_FALSE(graph.HasTriple(2, 1, 1));
}

TEST(GraphTest, DegreesAndCounts) {
  Graph graph;
  graph.AddTripleIds(1, 1, 2);
  graph.AddTripleIds(1, 2, 2);
  graph.AddTripleIds(3, 1, 2);
  graph.Finalize();
  EXPECT_EQ(graph.OutDegree(1), 2u);
  EXPECT_EQ(graph.OutDegree(2), 0u);
  EXPECT_EQ(graph.InDegree(2), 3u);
  EXPECT_EQ(graph.PredicateCount(1), 2u);
  EXPECT_EQ(graph.DistinctSubjects(1), 2u);
  EXPECT_EQ(graph.DistinctObjects(1), 1u);
  EXPECT_EQ(graph.subjects(), (std::vector<TermId>{1, 3}));
  EXPECT_EQ(graph.objects(), (std::vector<TermId>{2}));
}

// Property test: indexes agree with a brute-force reconstruction on
// random graphs of varying shapes.
class GraphPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(GraphPropertyTest, IndexesMatchBruteForce) {
  auto [nodes, preds, triples, seed] = GetParam();
  Graph graph = testing::MakeRandomGraph(nodes, preds, triples, seed);

  std::map<TermId, std::set<std::pair<TermId, TermId>>> out, in;
  std::map<TermId, std::set<std::pair<TermId, TermId>>> by_pred;
  for (const Triple& t : graph.triples()) {
    out[t.s].insert({t.p, t.o});
    in[t.o].insert({t.p, t.s});
    by_pred[t.p].insert({t.s, t.o});
  }
  for (TermId v = 1; v <= graph.num_nodes(); ++v) {
    EXPECT_EQ(graph.OutDegree(v), out[v].size());
    EXPECT_EQ(graph.InDegree(v), in[v].size());
    auto edges = graph.OutEdges(v);
    std::set<std::pair<TermId, TermId>> got;
    for (const auto& e : edges) got.insert({e.p, e.o});
    EXPECT_EQ(got, out[v]);
    auto iedges = graph.InEdges(v);
    got.clear();
    for (const auto& e : iedges) got.insert({e.p, e.s});
    EXPECT_EQ(got, in[v]);
  }
  for (TermId p = 1; p <= graph.num_predicates(); ++p) {
    EXPECT_EQ(graph.PredicateCount(p), by_pred[p].size());
    std::set<TermId> subjects, objects;
    for (const auto& [s, o] : by_pred[p]) {
      subjects.insert(s);
      objects.insert(o);
    }
    EXPECT_EQ(graph.DistinctSubjects(p), subjects.size());
    EXPECT_EQ(graph.DistinctObjects(p), objects.size());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GraphPropertyTest,
    ::testing::Values(std::tuple(5, 2, 10, 1), std::tuple(20, 3, 100, 2),
                      std::tuple(50, 10, 400, 3),
                      std::tuple(10, 1, 80, 4),
                      std::tuple(100, 20, 1000, 5)));

TEST(GraphTest, MemoryBytesScalesWithTriples) {
  Graph small = testing::MakeRandomGraph(50, 5, 100, 1);
  Graph large = testing::MakeRandomGraph(50, 5, 1000, 1);
  EXPECT_GT(large.MemoryBytes(), small.MemoryBytes());
}

TEST(GraphTest, SummaryString) {
  Graph graph = testing::MakePaperExampleGraph();
  std::string summary = GraphSummary(graph);
  EXPECT_NE(summary.find("11 triples"), std::string::npos);
}

// --- N-Triples IO -------------------------------------------------------------

TEST(NTriplesTest, LoadBasic) {
  std::istringstream in(
      "<a> <p> <b> .\n"
      "# comment\n"
      "\n"
      "<a> <q> \"literal value\" .\n");
  Graph graph;
  auto status = LoadNTriples(in, &graph);
  ASSERT_TRUE(status.ok()) << status.message();
  graph.Finalize();
  EXPECT_EQ(graph.num_triples(), 2u);
  EXPECT_TRUE(graph.dict().FindNode("a").has_value());
  EXPECT_TRUE(graph.dict().FindNode("\"literal value\"").has_value());
  EXPECT_TRUE(graph.dict().FindPredicate("q").has_value());
}

TEST(NTriplesTest, MalformedLineIsError) {
  std::istringstream in("<a> <p> .\n");
  Graph graph;
  auto status = LoadNTriples(in, &graph);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("line 1"), std::string::npos);
}

TEST(NTriplesTest, TrailingJunkIsError) {
  std::istringstream in("<a> <p> <b> . extra\n");
  Graph graph;
  auto status = LoadNTriples(in, &graph);
  EXPECT_FALSE(status.ok());
}

TEST(NTriplesTest, WriteLoadRoundTrip) {
  Graph original = testing::MakePaperExampleGraph();
  std::ostringstream out;
  ASSERT_TRUE(WriteNTriples(original, out).ok());

  std::istringstream in(out.str());
  Graph reloaded;
  ASSERT_TRUE(LoadNTriples(in, &reloaded).ok());
  reloaded.Finalize();
  EXPECT_EQ(reloaded.num_triples(), original.num_triples());
  EXPECT_EQ(reloaded.num_predicates(), original.num_predicates());
  // Same named triples must exist.
  auto s = reloaded.dict().FindNode("TheShining");
  auto p = reloaded.dict().FindPredicate("hasAuthor");
  auto o = reloaded.dict().FindNode("StephenKing");
  ASSERT_TRUE(s && p && o);
  EXPECT_TRUE(reloaded.HasTriple(*s, *p, *o));
}

TEST(NTriplesTest, MissingFileIsError) {
  Graph graph;
  EXPECT_FALSE(LoadNTriplesFile("/nonexistent/file.nt", &graph).ok());
}

}  // namespace
}  // namespace lmkg::rdf
