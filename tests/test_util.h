#ifndef LMKG_TESTS_TEST_UTIL_H_
#define LMKG_TESTS_TEST_UTIL_H_

#include <functional>
#include <vector>

#include "query/query.h"
#include "rdf/graph.h"
#include "util/random.h"

// --- allocation counting (opt-in) -------------------------------------------
// Define LMKG_TEST_COUNT_ALLOCATIONS before including this header (from
// exactly ONE translation unit of the test binary — the replacements are
// global) to install the counting operator new/delete hooks of
// util/alloc_hooks.h. Used by tests/alloc_test.cc to pin the
// zero-allocations-per-query property of the estimation hot path.
#ifdef LMKG_TEST_COUNT_ALLOCATIONS
#define LMKG_ENABLE_ALLOC_COUNT_HOOKS
#include "util/alloc_hooks.h"

namespace lmkg::testing {
using lmkg::util::AllocationBytes;
using lmkg::util::AllocationCount;
}  // namespace lmkg::testing
#endif  // LMKG_TEST_COUNT_ALLOCATIONS

namespace lmkg::testing {

/// A random directed multigraph-free graph with roughly `num_triples`
/// distinct triples over `num_nodes` nodes and `num_predicates`
/// predicates. Finalized.
inline rdf::Graph MakeRandomGraph(size_t num_nodes, size_t num_predicates,
                                  size_t num_triples, uint64_t seed) {
  util::Pcg32 rng(seed, /*stream=*/0x7e57);
  rdf::Graph graph;
  for (size_t i = 0; i < num_triples; ++i) {
    rdf::TermId s = 1 + rng.UniformInt(static_cast<uint32_t>(num_nodes));
    rdf::TermId p =
        1 + rng.UniformInt(static_cast<uint32_t>(num_predicates));
    rdf::TermId o = 1 + rng.UniformInt(static_cast<uint32_t>(num_nodes));
    graph.AddTripleIds(s, p, o);
  }
  graph.Finalize();
  return graph;
}

/// The running example of the paper (Fig. 2): books, authors, genres.
/// Terms are interned through the dictionary so parser tests can refer to
/// them by name.
inline rdf::Graph MakePaperExampleGraph() {
  rdf::Graph graph;
  graph.AddTriple("TheShining", "hasAuthor", "StephenKing");
  graph.AddTriple("TheShining", "genre", "Horror");
  graph.AddTriple("IT", "hasAuthor", "StephenKing");
  graph.AddTriple("IT", "genre", "Horror");
  graph.AddTriple("StephenKing", "bornIn", "USA");
  graph.AddTriple("Dracula", "genre", "Horror");
  graph.AddTriple("Dracula", "hasAuthor", "BramStoker");
  graph.AddTriple("Emma", "hasAuthor", "JaneAusten");
  graph.AddTriple("Emma", "genre", "Romance");
  graph.AddTriple("JaneAusten", "bornIn", "England");
  graph.AddTriple("BramStoker", "bornIn", "Ireland");
  graph.Finalize();
  return graph;
}

/// Brute-force reference count of a BGP: enumerates every assignment of
/// the variables (exponential — only for tiny graphs and queries).
inline uint64_t BruteForceCount(const rdf::Graph& graph,
                                const query::Query& q) {
  // Split variables into node vars and predicate vars.
  std::vector<bool> is_pred_var(q.num_vars, false);
  for (const auto& t : q.patterns)
    if (t.p.is_var()) is_pred_var[t.p.var] = true;

  std::vector<rdf::TermId> binding(q.num_vars, 0);
  uint64_t count = 0;
  // Recursive enumeration over variable values.
  std::function<void(int)> recurse = [&](int var) {
    if (var == q.num_vars) {
      for (const auto& t : q.patterns) {
        auto value = [&](const query::PatternTerm& term) {
          return term.bound() ? term.value : binding[term.var];
        };
        if (!graph.HasTriple(value(t.s), value(t.p), value(t.o))) return;
      }
      ++count;
      return;
    }
    size_t domain = is_pred_var[var] ? graph.num_predicates()
                                     : graph.num_nodes();
    for (rdf::TermId v = 1; v <= domain; ++v) {
      binding[var] = v;
      recurse(var + 1);
    }
  };
  recurse(0);
  return count;
}

}  // namespace lmkg::testing

#endif  // LMKG_TESTS_TEST_UTIL_H_
