#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "core/lmkg.h"
#include "core/lmkg_s.h"
#include "core/lmkg_u.h"
#include "encoding/query_encoder.h"
#include "nn/layer.h"
#include "nn/serialize.h"
#include "sampling/workload.h"
#include "test_util.h"

namespace lmkg {
namespace {

using query::PatternTerm;
using query::Topology;

// --- raw parameter round trips --------------------------------------------------

TEST(SerializeTest, RoundTripRestoresExactBits) {
  util::Pcg32 rng(1);
  nn::Sequential net;
  net.Add(std::make_unique<nn::Dense>(4, 8, rng));
  net.Add(std::make_unique<nn::Relu>());
  net.Add(std::make_unique<nn::Dense>(8, 2, rng));
  std::vector<float> original;
  for (nn::ParamRef p : net.Params())
    original.insert(original.end(), p.value->data(),
                    p.value->data() + p.value->size());

  std::stringstream buffer;
  ASSERT_TRUE(nn::SaveParams(net.Params(), buffer).ok());

  // Scramble, then load back.
  for (nn::ParamRef p : net.Params()) p.value->Fill(99.0f);
  ASSERT_TRUE(nn::LoadParams(net.Params(), buffer).ok());
  std::vector<float> restored;
  for (nn::ParamRef p : net.Params())
    restored.insert(restored.end(), p.value->data(),
                    p.value->data() + p.value->size());
  EXPECT_EQ(original, restored);
}

TEST(SerializeTest, RejectsBadMagic) {
  util::Pcg32 rng(2);
  nn::Sequential net;
  net.Add(std::make_unique<nn::Dense>(2, 2, rng));
  std::stringstream buffer("this is not a model file at all........");
  auto status = nn::LoadParams(net.Params(), buffer);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("magic"), std::string::npos);
}

TEST(SerializeTest, RejectsShapeMismatchWithoutPartialLoad) {
  util::Pcg32 rng(3);
  nn::Sequential small, big;
  small.Add(std::make_unique<nn::Dense>(2, 2, rng));
  big.Add(std::make_unique<nn::Dense>(2, 3, rng));
  std::stringstream buffer;
  ASSERT_TRUE(nn::SaveParams(small.Params(), buffer).ok());
  // Remember big's weights; the failed load must not alter them.
  std::vector<float> before;
  for (nn::ParamRef p : big.Params())
    before.insert(before.end(), p.value->data(),
                  p.value->data() + p.value->size());
  auto status = nn::LoadParams(big.Params(), buffer);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("shape mismatch"), std::string::npos);
  std::vector<float> after;
  for (nn::ParamRef p : big.Params())
    after.insert(after.end(), p.value->data(),
                 p.value->data() + p.value->size());
  EXPECT_EQ(before, after);
}

TEST(SerializeTest, RejectsTruncatedData) {
  util::Pcg32 rng(4);
  nn::Sequential net;
  net.Add(std::make_unique<nn::Dense>(4, 4, rng));
  std::stringstream buffer;
  ASSERT_TRUE(nn::SaveParams(net.Params(), buffer).ok());
  std::string bytes = buffer.str();
  std::stringstream truncated(bytes.substr(0, bytes.size() / 2));
  EXPECT_FALSE(nn::LoadParams(net.Params(), truncated).ok());
}

TEST(SerializeTest, RejectsTensorCountMismatch) {
  util::Pcg32 rng(5);
  nn::Sequential one, two;
  one.Add(std::make_unique<nn::Dense>(2, 2, rng));
  two.Add(std::make_unique<nn::Dense>(2, 2, rng));
  two.Add(std::make_unique<nn::Dense>(2, 2, rng));
  std::stringstream buffer;
  ASSERT_TRUE(nn::SaveParams(one.Params(), buffer).ok());
  auto status = nn::LoadParams(two.Params(), buffer);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("count mismatch"), std::string::npos);
}

// --- LMKG model round trips -------------------------------------------------------

class ModelSerializeTest : public ::testing::Test {
 protected:
  ModelSerializeTest()
      : graph_(lmkg::testing::MakeRandomGraph(30, 4, 250, 11)) {}

  std::vector<sampling::LabeledQuery> StarWorkload(size_t count,
                                                   uint64_t seed) {
    sampling::WorkloadGenerator generator(graph_);
    sampling::WorkloadGenerator::Options options;
    options.topology = Topology::kStar;
    options.query_size = 2;
    options.count = count;
    options.seed = seed;
    return generator.Generate(options);
  }

  rdf::Graph graph_;
};

TEST_F(ModelSerializeTest, LmkgSRoundTripPreservesEstimates) {
  core::LmkgSConfig config;
  config.hidden_dim = 32;
  config.epochs = 15;
  config.seed = 3;
  auto make_encoder = [&] {
    return encoding::MakeStarEncoder(graph_, 2,
                                     encoding::TermEncoding::kBinary);
  };
  core::LmkgS trained(make_encoder(), config);
  auto workload = StarWorkload(150, 21);
  trained.Train(workload);

  std::stringstream buffer;
  ASSERT_TRUE(trained.Save(buffer).ok());

  core::LmkgS restored(make_encoder(), config);
  ASSERT_TRUE(restored.Load(buffer).ok());
  for (size_t i = 0; i < 10 && i < workload.size(); ++i) {
    EXPECT_DOUBLE_EQ(trained.EstimateCardinality(workload[i].query),
                     restored.EstimateCardinality(workload[i].query));
  }
}

TEST_F(ModelSerializeTest, LmkgURoundTripPreservesEstimates) {
  core::LmkgUConfig config;
  config.embedding_dim = 8;
  config.hidden_dim = 32;
  config.num_blocks = 1;
  config.epochs = 4;
  config.train_samples = 800;
  config.sample_count = 16;
  config.seed = 5;
  core::LmkgU trained(graph_, Topology::kStar, 2, config);
  trained.Train();

  std::stringstream buffer;
  ASSERT_TRUE(trained.Save(buffer).ok());

  core::LmkgU restored(graph_, Topology::kStar, 2, config);
  ASSERT_TRUE(restored.Load(buffer).ok());
  // Fully bound query: estimation is deterministic (no sampling).
  auto workload = StarWorkload(5, 31);
  ASSERT_FALSE(workload.empty());
  // Build a fully bound query from the graph directly.
  sampling::StarPopulation population(graph_, 2);
  util::Pcg32 rng(7);
  auto star = population.SampleUniform(rng);
  query::Query bound = sampling::ToQuery(star);
  EXPECT_DOUBLE_EQ(trained.EstimateCardinality(bound),
                   restored.EstimateCardinality(bound));
}

TEST_F(ModelSerializeTest, LmkgSLoadRejectsDifferentArchitecture) {
  core::LmkgSConfig config;
  config.hidden_dim = 32;
  config.epochs = 5;
  config.seed = 3;
  core::LmkgS trained(
      encoding::MakeStarEncoder(graph_, 2, encoding::TermEncoding::kBinary),
      config);
  trained.Train(StarWorkload(120, 41));
  std::stringstream buffer;
  ASSERT_TRUE(trained.Save(buffer).ok());

  core::LmkgSConfig other = config;
  other.hidden_dim = 64;  // different architecture
  core::LmkgS incompatible(
      encoding::MakeStarEncoder(graph_, 2, encoding::TermEncoding::kBinary),
      other);
  EXPECT_FALSE(incompatible.Load(buffer).ok());
}

// --- framework-level persistence -------------------------------------------------

class FrameworkPersistenceTest : public ::testing::Test {
 protected:
  FrameworkPersistenceTest()
      : graph_(lmkg::testing::MakeRandomGraph(35, 4, 300, 41)) {}

  core::LmkgConfig SupervisedConfig() {
    core::LmkgConfig config;
    config.kind = core::ModelKind::kSupervised;
    config.grouping = core::Grouping::kBySize;
    config.query_sizes = {2, 3};
    config.s_config.hidden_dim = 32;
    config.s_config.epochs = 8;
    config.train_queries_per_combo = 120;
    config.seed = 29;
    return config;
  }

  core::LmkgConfig UnsupervisedConfig() {
    core::LmkgConfig config;
    config.kind = core::ModelKind::kUnsupervised;
    config.query_sizes = {2};
    config.u_config.embedding_dim = 8;
    config.u_config.hidden_dim = 32;
    config.u_config.num_blocks = 1;
    config.u_config.epochs = 2;
    config.u_config.train_samples = 600;
    config.u_config.sample_count = 16;
    config.seed = 29;
    return config;
  }

  std::vector<sampling::LabeledQuery> TestQueries(size_t count) {
    sampling::WorkloadGenerator generator(graph_);
    sampling::WorkloadGenerator::Options options;
    options.topology = Topology::kStar;
    options.query_size = 2;
    options.count = count;
    options.seed = 97;
    return generator.Generate(options);
  }

  rdf::Graph graph_;
};

TEST_F(FrameworkPersistenceTest, SupervisedRoundTripPreservesEstimates) {
  core::Lmkg original(graph_, SupervisedConfig());
  original.BuildModels();
  std::stringstream buffer;
  ASSERT_TRUE(original.SaveModels(buffer).ok());

  core::Lmkg restored(graph_, SupervisedConfig());
  ASSERT_TRUE(restored.LoadModels(buffer).ok());
  EXPECT_EQ(restored.num_models(), original.num_models());
  for (const auto& lq : TestQueries(20))
    EXPECT_DOUBLE_EQ(restored.EstimateCardinality(lq.query),
                     original.EstimateCardinality(lq.query));
}

TEST_F(FrameworkPersistenceTest, UnsupervisedRoundTripPreservesEstimates) {
  core::Lmkg original(graph_, UnsupervisedConfig());
  original.BuildModels();
  std::stringstream buffer;
  ASSERT_TRUE(original.SaveModels(buffer).ok());

  core::Lmkg restored(graph_, UnsupervisedConfig());
  ASSERT_TRUE(restored.LoadModels(buffer).ok());
  // LMKG-U estimates are Monte-Carlo (likelihood-weighted sampling), so
  // two calls on the *same* model already differ slightly; require the
  // restored density model to agree within a modest relative band.
  for (const auto& lq : TestQueries(10)) {
    double original_estimate = original.EstimateCardinality(lq.query);
    double restored_estimate = restored.EstimateCardinality(lq.query);
    EXPECT_NEAR(restored_estimate, original_estimate,
                0.25 * std::max(original_estimate, 1.0))
        << query::QueryToString(lq.query);
  }
}

TEST_F(FrameworkPersistenceTest, LoadRejectsBadMagic) {
  core::Lmkg lmkg(graph_, SupervisedConfig());
  std::stringstream garbage;
  garbage << "definitely not a model file with enough bytes to fill the "
             "header structure";
  util::Status status = lmkg.LoadModels(garbage);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("magic"), std::string::npos);
}

TEST_F(FrameworkPersistenceTest, LoadRejectsTruncatedStream) {
  core::Lmkg original(graph_, SupervisedConfig());
  original.BuildModels();
  std::stringstream buffer;
  ASSERT_TRUE(original.SaveModels(buffer).ok());
  std::string bytes = buffer.str();
  // Cut the payload in half: the header parses, a model load must fail.
  std::stringstream truncated(bytes.substr(0, bytes.size() / 2));
  core::Lmkg restored(graph_, SupervisedConfig());
  EXPECT_FALSE(restored.LoadModels(truncated).ok());
}

TEST_F(FrameworkPersistenceTest, LoadRejectsMismatchedGrouping) {
  core::Lmkg original(graph_, SupervisedConfig());
  original.BuildModels();
  std::stringstream buffer;
  ASSERT_TRUE(original.SaveModels(buffer).ok());

  core::LmkgConfig other = SupervisedConfig();
  other.grouping = core::Grouping::kByType;
  core::Lmkg restored(graph_, other);
  util::Status status = restored.LoadModels(buffer);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("grouping"), std::string::npos);
}

TEST_F(FrameworkPersistenceTest, LoadRejectsMismatchedKind) {
  core::Lmkg original(graph_, UnsupervisedConfig());
  original.BuildModels();
  std::stringstream buffer;
  ASSERT_TRUE(original.SaveModels(buffer).ok());
  core::Lmkg restored(graph_, SupervisedConfig());
  EXPECT_FALSE(restored.LoadModels(buffer).ok());
}

TEST_F(FrameworkPersistenceTest, LoadRejectsMismatchedHiddenDim) {
  core::Lmkg original(graph_, SupervisedConfig());
  original.BuildModels();
  std::stringstream buffer;
  ASSERT_TRUE(original.SaveModels(buffer).ok());

  core::LmkgConfig other = SupervisedConfig();
  other.s_config.hidden_dim = 64;  // different tensor shapes
  core::Lmkg restored(graph_, other);
  EXPECT_FALSE(restored.LoadModels(buffer).ok());
}

}  // namespace
}  // namespace lmkg

