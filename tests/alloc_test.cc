// Pins the allocation-free property of the estimation hot path: once an
// encoder's (or estimator's) internal scratch is warm, pushing a batch
// of queries through it must perform ZERO heap allocations — the
// canonicalization views (query::AsStar/AsChain), the encoder scratch,
// and the sparse input buffers are all reused, so steady-state serving
// never touches the allocator. A global operator-new hook (see
// test_util.h) counts every allocation in the binary; the assertions
// snapshot the counter tightly around the calls under test.
#define LMKG_TEST_COUNT_ALLOCATIONS
#include <gtest/gtest.h>
#include <stdlib.h>
#include <unistd.h>

#include <span>
#include <string>
#include <vector>

#include "core/adaptive.h"
#include "core/lmkg_s.h"
#include "encoding/query_encoder.h"
#include "nn/tensor.h"
#include "planner/planner.h"
#include "query/fingerprint.h"
#include "query/query.h"
#include "sampling/workload.h"
#include "store/model_store.h"
#include "store/replica_attach.h"
#include "store/store_cache.h"
#include "test_util.h"

namespace lmkg::encoding {
namespace {

using query::Query;
using query::Topology;

std::vector<Query> MakeWorkload(const rdf::Graph& graph,
                                Topology topology, int size, size_t count,
                                uint64_t seed) {
  sampling::WorkloadGenerator generator(graph);
  sampling::WorkloadGenerator::Options options;
  options.topology = topology;
  options.query_size = size;
  options.count = count;
  options.seed = seed;
  std::vector<Query> queries;
  for (auto& lq : generator.Generate(options))
    queries.push_back(std::move(lq.query));
  return queries;
}

class AllocationTest : public ::testing::Test {
 protected:
  AllocationTest()
      : graph_(lmkg::testing::MakeRandomGraph(60, 6, 700, 11)),
        stars_(MakeWorkload(graph_, Topology::kStar, 3, 24, 5)),
        chains_(MakeWorkload(graph_, Topology::kChain, 3, 24, 6)) {
    mixed_ = stars_;
    mixed_.insert(mixed_.end(), chains_.begin(), chains_.end());
  }

  // Allocations performed by one EncodeBatch call after a warm-up call
  // with the same inputs and output buffer.
  size_t WarmedEncodeBatchAllocs(const QueryEncoder& encoder,
                                 const std::vector<Query>& queries,
                                 nn::Matrix* out) {
    encoder.EncodeBatch(queries, out);  // warm-up: scratch + out sizing
    const size_t before = lmkg::testing::AllocationCount();
    encoder.EncodeBatch(queries, out);
    return lmkg::testing::AllocationCount() - before;
  }

  rdf::Graph graph_;
  std::vector<Query> stars_;
  std::vector<Query> chains_;
  std::vector<Query> mixed_;
};

TEST_F(AllocationTest, SgEncodeBatchIsAllocationFreeWhenWarm) {
  auto encoder = MakeSgEncoder(graph_, 5, 4, TermEncoding::kBinary);
  nn::Matrix out;
  EXPECT_EQ(WarmedEncodeBatchAllocs(*encoder, stars_, &out), 0u);
  EXPECT_EQ(WarmedEncodeBatchAllocs(*encoder, chains_, &out), 0u);
  EXPECT_EQ(WarmedEncodeBatchAllocs(*encoder, mixed_, &out), 0u);
}

TEST_F(AllocationTest, SgEncodeBatchSparseIsAllocationFreeWhenWarm) {
  auto encoder = MakeSgEncoder(graph_, 5, 4, TermEncoding::kBinary);
  nn::SparseRows rows;
  ASSERT_TRUE(encoder->EncodeBatchSparse(mixed_, &rows));  // warm-up
  const size_t before = lmkg::testing::AllocationCount();
  ASSERT_TRUE(encoder->EncodeBatchSparse(mixed_, &rows));
  EXPECT_EQ(lmkg::testing::AllocationCount() - before, 0u);
}

TEST_F(AllocationTest, StarEncoderBatchIsAllocationFreeWhenWarm) {
  auto encoder = MakeStarEncoder(graph_, 4, TermEncoding::kBinary);
  nn::Matrix out;
  EXPECT_EQ(WarmedEncodeBatchAllocs(*encoder, stars_, &out), 0u);
}

TEST_F(AllocationTest, ChainEncoderBatchIsAllocationFreeWhenWarm) {
  auto encoder = MakeChainEncoder(graph_, 4, TermEncoding::kBinary);
  nn::Matrix out;
  EXPECT_EQ(WarmedEncodeBatchAllocs(*encoder, chains_, &out), 0u);
}

TEST_F(AllocationTest, AsChainIsAllocationFreeWithWarmScratch) {
  query::ChainScratch scratch;
  query::ChainView view;
  ASSERT_TRUE(query::AsChain(chains_[0], &scratch, &view));  // warm-up
  const size_t before = lmkg::testing::AllocationCount();
  for (const Query& q : chains_) {
    ASSERT_TRUE(query::AsChain(q, &scratch, &view));
    ASSERT_EQ(view.size(), q.size());
  }
  EXPECT_EQ(lmkg::testing::AllocationCount() - before, 0u);
}

// The serving cache key: fingerprinting a query with a warm scratch
// performs zero heap allocations, so the cache-hit fast path of
// serving::EstimatorService never touches the allocator.
TEST_F(AllocationTest, FingerprintIsAllocationFreeWithWarmScratch) {
  // Stars and chains plus a cyclic query, so the star, chain, AND
  // composite-fallback branches are all pinned allocation-free.
  std::vector<Query> queries = mixed_;
  {
    using query::PatternTerm;
    Query cycle;
    cycle.patterns.push_back({PatternTerm::Variable(0),
                              PatternTerm::Bound(1),
                              PatternTerm::Variable(1)});
    cycle.patterns.push_back({PatternTerm::Variable(1),
                              PatternTerm::Bound(2),
                              PatternTerm::Variable(0)});
    cycle.num_vars = 2;
    queries.push_back(std::move(cycle));
  }
  query::FingerprintScratch scratch;
  for (const Query& q : queries)
    (void)query::ComputeFingerprint(q, &scratch);  // warm-up
  const size_t before = lmkg::testing::AllocationCount();
  query::Fingerprint accumulated{0, 0};
  for (const Query& q : queries) {
    const query::Fingerprint fp = query::ComputeFingerprint(q, &scratch);
    accumulated.hi ^= fp.hi;  // keep the calls observable
    accumulated.lo ^= fp.lo;
  }
  EXPECT_EQ(lmkg::testing::AllocationCount() - before, 0u);
  EXPECT_NE(accumulated.hi | accumulated.lo, 0u);
}

// The planner's per-sub-plan key: fingerprinting pattern-index subsets
// in place — star, chain, AND composite/disconnected subsets — allocates
// nothing once the scratch is warm, so DP enumeration never pays the
// materialize-and-renormalize copy the old advisor loop did.
TEST_F(AllocationTest, SubsetFingerprintIsAllocationFreeWithWarmScratch) {
  query::FingerprintScratch scratch;
  std::vector<int> subset;
  subset.reserve(8);
  auto all_subsets = [&](const Query& q, bool count) -> size_t {
    const int n = static_cast<int>(q.patterns.size());
    const size_t before = lmkg::testing::AllocationCount();
    uint64_t accumulated = 0;
    for (uint64_t mask = 1; mask < (uint64_t{1} << n); ++mask) {
      subset.clear();
      for (int i = 0; i < n; ++i)
        if (mask & (uint64_t{1} << i)) subset.push_back(i);
      accumulated ^=
          query::ComputeSubsetFingerprint(q, subset, &scratch).lo;
    }
    EXPECT_NE(accumulated, 0u);
    return count ? lmkg::testing::AllocationCount() - before : 0;
  };
  for (const Query& q : mixed_) all_subsets(q, false);  // warm-up
  for (const Query& q : mixed_) EXPECT_EQ(all_subsets(q, true), 0u);
}

// One warm DP enumeration round allocates nothing: with every lattice
// cell memoized by the first round, the second PlanQuery runs subset
// fingerprinting, memo lookups, DP, and tree emission entirely out of
// reused buffers — the planner's steady state over a stable workload.
TEST_F(AllocationTest, WarmDpEnumerationRoundIsAllocationFree) {
  class FingerprintHashSource : public planner::CardinalitySource {
   public:
    double EstimateOne(const Query& q) override {
      return static_cast<double>(
          query::ComputeFingerprint(q, &scratch_).lo % 99991);
    }

   private:
    query::FingerprintScratch scratch_;
  };
  FingerprintHashSource source;
  planner::JoinPlanner planner(&source);
  for (const Query& q : mixed_) (void)planner.PlanQuery(q);  // warm + memo
  const size_t before = lmkg::testing::AllocationCount();
  double accumulated = 0.0;
  for (const Query& q : mixed_) {
    const planner::Plan& plan = planner.PlanQuery(q);
    EXPECT_EQ(plan.subplans_priced, 0u);  // fully memoized round
    accumulated += plan.cost;
  }
  EXPECT_EQ(lmkg::testing::AllocationCount() - before, 0u);
  EXPECT_GT(accumulated, 0.0);
}

// End-to-end: a trained LMKG-S serving a warm batch allocates nothing —
// encoder scratch, sparse input buffer, and every activation matrix in
// the network are reused across batches.
TEST_F(AllocationTest, LmkgSEstimateBatchIsAllocationFreeWhenWarm) {
  core::LmkgSConfig config;
  config.hidden_dim = 16;
  config.epochs = 1;
  config.dropout = 0.0;
  core::LmkgS model(MakeSgEncoder(graph_, 5, 4, TermEncoding::kBinary),
                    config);
  sampling::WorkloadGenerator generator(graph_);
  sampling::WorkloadGenerator::Options options;
  options.topology = Topology::kStar;
  options.query_size = 3;
  options.count = 30;
  options.seed = 9;
  model.Train(generator.Generate(options));

  std::vector<double> estimates(mixed_.size(), 0.0);
  model.EstimateCardinalityBatch(mixed_, estimates);  // warm-up
  const size_t before = lmkg::testing::AllocationCount();
  model.EstimateCardinalityBatch(mixed_, estimates);
  EXPECT_EQ(lmkg::testing::AllocationCount() - before, 0u);
}

// --- mapped model store ------------------------------------------------------

// Cold start from the store: a replica attached to mmapped segments and
// a replica rehydrated from a byte stream. Both end up serving the same
// models; the pins below prove the mapped one never copied the weights.
class MappedAttachAllocationTest : public AllocationTest {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/lmkg_alloc_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = tmpl;

    config_.s_config.hidden_dim = 32;
    config_.s_config.epochs = 2;
    config_.s_config.dropout = 0.0;
    config_.train_queries = 60;
    config_.initial_combos = {{Topology::kStar, 2}};
    config_.seed = 3;

    donor_ = std::make_unique<core::AdaptiveLmkg>(graph_, config_);
    ASSERT_TRUE(store::ModelStore::Open(dir_, store::ToStoreArch(config_),
                                        &store_)
                    .ok());
    for (const auto& combo : donor_->ModelCombos())
      ASSERT_TRUE(store::WriteModelSegment(store_.get(), "default", combo,
                                           donor_->FindModel(combo))
                      .ok());
    ASSERT_TRUE(store_->Commit().ok());

    stars2_ = MakeWorkload(graph_, Topology::kStar, 2, 8, 17);
  }

  void TearDown() override {
    for (const auto& info : store_->Segments())
      ::unlink((dir_ + "/" + info.file).c_str());
    ::unlink((dir_ + "/MANIFEST.lmst").c_str());
    ::rmdir(dir_.c_str());
  }

  core::AdaptiveLmkgConfig EmptyConfig() {
    core::AdaptiveLmkgConfig config = config_;
    config.initial_combos.clear();
    return config;
  }

  size_t DonorWeightBytes() {
    size_t bytes = 0;
    for (const auto& combo : donor_->ModelCombos())
      for (const nn::ConstMatrixView& view :
           donor_->FindModel(combo)->ParamViews())
        bytes += view.rows * view.cols * sizeof(float);
    return bytes;
  }

  std::string dir_;
  core::AdaptiveLmkgConfig config_;
  std::unique_ptr<core::AdaptiveLmkg> donor_;
  std::unique_ptr<store::ModelStore> store_;
  std::vector<query::Query> stars2_;
};

// Attaching + hydrating from the store borrows every weight matrix out
// of the mapping: the mapped cold start must allocate at least the whole
// weight payload LESS than the streamed one (which decodes the same
// weights into owned storage, plus optimizer state the mapped serve-only
// model never builds).
TEST_F(MappedAttachAllocationTest, HydrationCopiesNoWeightMatrices) {
  const size_t weight_bytes = DonorWeightBytes();
  ASSERT_GT(weight_bytes, 0u);

  std::ostringstream blob;
  ASSERT_TRUE(donor_->Save(blob).ok());
  const std::string snapshot = blob.str();
  core::AdaptiveLmkg streamed(graph_, EmptyConfig());
  std::istringstream in(snapshot);
  const size_t streamed_before = lmkg::testing::AllocationBytes();
  ASSERT_TRUE(streamed.Load(in).ok());
  const size_t streamed_bytes =
      lmkg::testing::AllocationBytes() - streamed_before;

  store::StoreCache cache(*store_, store::StoreCache::Options{});
  core::AdaptiveLmkg mapped(graph_, EmptyConfig());
  const size_t mapped_before = lmkg::testing::AllocationBytes();
  ASSERT_TRUE(store::AttachReplica(&cache, "default", &mapped).ok());
  ASSERT_TRUE(mapped.HydrateAllMapped().ok());
  const size_t mapped_bytes =
      lmkg::testing::AllocationBytes() - mapped_before;

  EXPECT_GE(streamed_bytes, mapped_bytes + weight_bytes)
      << "streamed=" << streamed_bytes << " mapped=" << mapped_bytes
      << " weights=" << weight_bytes;
  // And the mapped replica actually serves.
  EXPECT_DOUBLE_EQ(mapped.EstimateCardinality(stars2_[0]),
                   donor_->EstimateCardinality(stars2_[0]));
}

// The millisecond-cold-start contract end to end: attach with one warm
// query (hydrates the combo, sizes every scratch buffer on the path),
// then the NEXT estimate — the first real request the process serves —
// touches the allocator zero times.
TEST_F(MappedAttachAllocationTest, FirstEstimateAfterWarmAttachIsAllocationFree) {
  store::StoreCache cache(*store_, store::StoreCache::Options{});
  core::AdaptiveLmkg mapped(graph_, EmptyConfig());
  store::AttachOptions options;
  options.warm_queries = {stars2_[0]};
  ASSERT_TRUE(store::AttachReplica(&cache, "default", &mapped, options).ok());

  const size_t before = lmkg::testing::AllocationCount();
  const double estimate = mapped.EstimateCardinality(stars2_[1]);
  EXPECT_EQ(lmkg::testing::AllocationCount() - before, 0u);
  EXPECT_DOUBLE_EQ(estimate, donor_->EstimateCardinality(stars2_[1]));
}

}  // namespace
}  // namespace lmkg::encoding
