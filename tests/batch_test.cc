// EstimateCardinalityBatch must be estimate-equivalent to the per-query
// path for every estimator in the repository: running a fresh estimator
// over a workload query-by-query and running an identically constructed
// one over the same workload through the batch API must produce
// bit-for-bit equal estimates. This pins down the whole batched pipeline
// — encoder batching, the multi-row NN kernels (whose per-row results
// must not depend on the batch they run in), the facade's grouped
// dispatch, and the RNG discipline of the sampling estimators.
#include <gtest/gtest.h>

#include <memory>
#include <span>
#include <vector>

#include "baselines/cset.h"
#include "baselines/impr.h"
#include "baselines/independence.h"
#include "baselines/jsub.h"
#include "baselines/mscn.h"
#include "baselines/sumrdf.h"
#include "baselines/wander_join.h"
#include "core/adaptive.h"
#include "core/lmkg.h"
#include "core/lmkg_s.h"
#include "core/lmkg_u.h"
#include "core/outlier_buffer.h"
#include "core/single_pattern.h"
#include "encoding/query_encoder.h"
#include "sampling/workload.h"
#include "test_util.h"

namespace lmkg::core {
namespace {

using query::PatternTerm;
using query::Query;
using query::Topology;

PatternTerm B(rdf::TermId id) { return PatternTerm::Bound(id); }
PatternTerm V(int v) { return PatternTerm::Variable(v); }

std::vector<sampling::LabeledQuery> MakeWorkload(const rdf::Graph& graph,
                                                 Topology topology, int size,
                                                 size_t count,
                                                 uint64_t seed) {
  sampling::WorkloadGenerator generator(graph);
  sampling::WorkloadGenerator::Options options;
  options.topology = topology;
  options.query_size = size;
  options.count = count;
  options.seed = seed;
  return generator.Generate(options);
}

std::vector<Query> QueriesOf(
    const std::vector<sampling::LabeledQuery>& labeled) {
  std::vector<Query> queries;
  queries.reserve(labeled.size());
  for (const auto& lq : labeled) queries.push_back(lq.query);
  return queries;
}

// A ~200-query mixed star/chain workload every trained model group of the
// tests below can serve.
std::vector<Query> MixedWorkload(const rdf::Graph& graph, uint64_t seed) {
  std::vector<Query> queries;
  for (auto [topology, size] :
       {std::pair{Topology::kStar, 2}, {Topology::kChain, 2}}) {
    auto labeled = MakeWorkload(graph, topology, size, 100, seed++);
    auto batch = QueriesOf(labeled);
    queries.insert(queries.end(), batch.begin(), batch.end());
  }
  return queries;
}

// `sequential` and `batched` must be identically constructed fresh
// instances (same seeds, same training) — stateful estimators advance
// their RNG per estimate, so the two paths are compared on equal streams.
void ExpectBatchMatchesSequential(CardinalityEstimator* sequential,
                                  CardinalityEstimator* batched,
                                  const std::vector<Query>& queries) {
  ASSERT_FALSE(queries.empty());
  std::vector<double> expected;
  expected.reserve(queries.size());
  for (const Query& q : queries) {
    ASSERT_TRUE(sequential->CanEstimate(q));
    expected.push_back(sequential->EstimateCardinality(q));
  }
  std::vector<double> got(queries.size(), -1.0);
  batched->EstimateCardinalityBatch(queries, got);
  for (size_t i = 0; i < queries.size(); ++i)
    ASSERT_EQ(expected[i], got[i])
        << "query " << i << ": " << query::QueryToString(queries[i]);
}

class BatchEquivalenceTest : public ::testing::Test {
 protected:
  BatchEquivalenceTest()
      : graph_(lmkg::testing::MakeRandomGraph(40, 5, 500, 3)) {}

  LmkgSConfig SmallSConfig() {
    LmkgSConfig config;
    config.hidden_dim = 32;
    config.num_hidden_layers = 2;
    config.epochs = 8;
    config.dropout = 0.1;  // exercised at train time, identity at serve
    config.seed = 7;
    return config;
  }

  std::unique_ptr<LmkgS> TrainedLmkgS(
      const std::vector<sampling::LabeledQuery>& train) {
    auto model = std::make_unique<LmkgS>(
        encoding::MakeSgEncoder(graph_, 3, 2,
                                encoding::TermEncoding::kBinary),
        SmallSConfig());
    model->Train(train);
    return model;
  }

  rdf::Graph graph_;
};

TEST_F(BatchEquivalenceTest, LmkgSWithSgEncoder) {
  auto train = MakeWorkload(graph_, Topology::kStar, 2, 150, 11);
  auto chain_train = MakeWorkload(graph_, Topology::kChain, 2, 150, 12);
  train.insert(train.end(), chain_train.begin(), chain_train.end());
  auto sequential = TrainedLmkgS(train);
  auto batched = TrainedLmkgS(train);
  ExpectBatchMatchesSequential(sequential.get(), batched.get(),
                               MixedWorkload(graph_, 21));
}

TEST_F(BatchEquivalenceTest, LmkgSWithStarEncoder) {
  auto train = MakeWorkload(graph_, Topology::kStar, 2, 200, 13);
  auto make = [&] {
    auto model = std::make_unique<LmkgS>(
        encoding::MakeStarEncoder(graph_, 2,
                                  encoding::TermEncoding::kBinary),
        SmallSConfig());
    model->Train(train);
    return model;
  };
  auto sequential = make();
  auto batched = make();
  auto workload = QueriesOf(MakeWorkload(graph_, Topology::kStar, 2, 200, 22));
  ExpectBatchMatchesSequential(sequential.get(), batched.get(), workload);
}

TEST_F(BatchEquivalenceTest, LmkgU) {
  LmkgUConfig config;
  config.embedding_dim = 8;
  config.hidden_dim = 32;
  config.epochs = 2;
  config.train_samples = 800;
  config.sample_count = 12;
  config.seed = 5;
  auto make = [&] {
    auto model = std::make_unique<LmkgU>(graph_, Topology::kStar, 2, config);
    model->Train();
    return model;
  };
  auto sequential = make();
  auto batched = make();
  auto workload = QueriesOf(MakeWorkload(graph_, Topology::kStar, 2, 200, 23));
  ExpectBatchMatchesSequential(sequential.get(), batched.get(), workload);
}

TEST_F(BatchEquivalenceTest, SinglePattern) {
  std::vector<Query> workload;
  util::Pcg32 rng(31);
  while (workload.size() < 200) {
    Query q;
    int next_var = 0;
    auto term = [&](uint32_t domain) {
      if (rng.Bernoulli(0.5)) return B(1 + rng.UniformInt(domain));
      return V(next_var++);
    };
    query::TriplePattern t;
    t.s = term(40);
    t.p = term(5);
    t.o = term(40);
    q.patterns.push_back(t);
    query::NormalizeVariables(&q);
    if (q.Valid()) workload.push_back(std::move(q));
  }
  SinglePatternEstimator sequential(graph_);
  SinglePatternEstimator batched(graph_);
  ExpectBatchMatchesSequential(&sequential, &batched, workload);
}

TEST_F(BatchEquivalenceTest, LmkgFacadeSupervisedWithMixedDispatch) {
  LmkgConfig config;
  config.kind = ModelKind::kSupervised;
  config.query_sizes = {2, 3};
  config.s_config = SmallSConfig();
  config.train_queries_per_combo = 100;
  config.seed = 3;
  auto make = [&] {
    auto lmkg = std::make_unique<Lmkg>(graph_, config);
    lmkg->BuildModels();
    return lmkg;
  };
  auto sequential = make();
  auto batched = make();

  // Mixed dispatch: model-served stars/chains, exact size-1 lookups, and
  // a size-4 chain that goes through decomposition.
  std::vector<Query> workload = MixedWorkload(graph_, 41);
  auto more = QueriesOf(MakeWorkload(graph_, Topology::kChain, 4, 20, 42));
  workload.insert(workload.end(), more.begin(), more.end());
  Query single;
  single.patterns.push_back({B(1), B(1), V(0)});
  query::NormalizeVariables(&single);
  workload.push_back(single);
  ExpectBatchMatchesSequential(sequential.get(), batched.get(), workload);
}

TEST_F(BatchEquivalenceTest, LmkgFacadeUnsupervised) {
  LmkgConfig config;
  config.kind = ModelKind::kUnsupervised;
  config.query_sizes = {2};
  config.u_config.embedding_dim = 8;
  config.u_config.hidden_dim = 32;
  config.u_config.epochs = 1;
  config.u_config.train_samples = 500;
  config.u_config.sample_count = 8;
  config.seed = 9;
  auto make = [&] {
    auto lmkg = std::make_unique<Lmkg>(graph_, config);
    lmkg->BuildModels();
    return lmkg;
  };
  auto sequential = make();
  auto batched = make();
  // Star/chain queries within capacity: the grouped dispatch preserves
  // each (stateful) LMKG-U model's query order exactly.
  ExpectBatchMatchesSequential(sequential.get(), batched.get(),
                               MixedWorkload(graph_, 43));

  // A batch containing a decomposed query must also match: the facade
  // falls back to the strict per-query loop so the decomposition's
  // sub-queries (two size-2 stars here, served by the stateful star-2
  // model) consume the models' RNG streams in input order.
  std::vector<Query> mixed = MixedWorkload(graph_, 48);
  mixed.resize(20);
  Query double_star;
  double_star.patterns.push_back({V(0), B(1), V(1)});
  double_star.patterns.push_back({V(0), B(2), V(2)});
  double_star.patterns.push_back({V(3), B(1), V(4)});
  double_star.patterns.push_back({V(3), B(2), V(5)});
  query::NormalizeVariables(&double_star);
  mixed.insert(mixed.begin() + 10, double_star);
  ExpectBatchMatchesSequential(sequential.get(), batched.get(), mixed);
}

TEST_F(BatchEquivalenceTest, OutlierBufferForwardsOnlyMisses) {
  auto train = MakeWorkload(graph_, Topology::kStar, 2, 150, 14);
  auto chain_train = MakeWorkload(graph_, Topology::kChain, 2, 150, 15);
  train.insert(train.end(), chain_train.begin(), chain_train.end());
  auto inner_sequential = TrainedLmkgS(train);
  auto inner_batched = TrainedLmkgS(train);
  OutlierBuffer sequential(inner_sequential.get(), 50);
  OutlierBuffer batched(inner_batched.get(), 50);
  sequential.Populate(train);
  batched.Populate(train);
  ASSERT_GT(sequential.buffered(), 0u);

  // Half buffered training queries (hits), half fresh ones (misses).
  std::vector<Query> workload;
  for (size_t i = 0; i < 100 && i < train.size(); ++i)
    workload.push_back(train[i].query);
  auto misses = MixedWorkload(graph_, 44);
  workload.insert(workload.end(), misses.begin(), misses.end());
  ExpectBatchMatchesSequential(&sequential, &batched, workload);
}

TEST_F(BatchEquivalenceTest, AdaptiveLmkgWithFallback) {
  AdaptiveLmkgConfig config;
  config.s_config = SmallSConfig();
  config.train_queries = 100;
  config.seed = 6;
  auto make = [&] { return std::make_unique<AdaptiveLmkg>(graph_, config); };
  auto sequential = make();
  auto batched = make();

  std::vector<Query> workload = MixedWorkload(graph_, 45);
  // A composite 2-pattern query (object-object join) has no model and no
  // specialized combo: exercises the independence fallback.
  Query composite;
  composite.patterns.push_back({V(0), B(1), V(2)});
  composite.patterns.push_back({V(1), B(2), V(2)});
  query::NormalizeVariables(&composite);
  workload.push_back(composite);
  Query single;
  single.patterns.push_back({V(0), B(1), V(1)});
  query::NormalizeVariables(&single);
  workload.push_back(single);
  ExpectBatchMatchesSequential(sequential.get(), batched.get(), workload);
  // Both paths observed the same stream.
  EXPECT_EQ(sequential->monitor().observations(),
            batched->monitor().observations());
}

TEST_F(BatchEquivalenceTest, Mscn) {
  auto train = MakeWorkload(graph_, Topology::kStar, 2, 150, 16);
  auto chain_train = MakeWorkload(graph_, Topology::kChain, 2, 150, 17);
  train.insert(train.end(), chain_train.begin(), chain_train.end());
  baselines::MscnConfig config;
  config.hidden_dim = 32;
  config.epochs = 5;
  config.seed = 2;
  auto make = [&] {
    auto model = std::make_unique<baselines::MscnEstimator>(graph_, config);
    model->Train(train);
    return model;
  };
  auto sequential = make();
  auto batched = make();
  ExpectBatchMatchesSequential(sequential.get(), batched.get(),
                               MixedWorkload(graph_, 46));
}

// The sampling and synopsis baselines keep the base-class loop fallback;
// the batch API must still match per-query estimation exactly, including
// for the stateful random-walk estimators (equal RNG streams).
TEST_F(BatchEquivalenceTest, BaselinesViaFallback) {
  auto workload = MixedWorkload(graph_, 47);
  {
    baselines::CsetEstimator sequential(graph_);
    baselines::CsetEstimator batched(graph_);
    std::vector<Query> stars;
    for (const Query& q : workload)
      if (sequential.CanEstimate(q)) stars.push_back(q);
    ASSERT_FALSE(stars.empty());
    ExpectBatchMatchesSequential(&sequential, &batched, stars);
  }
  {
    baselines::IndependenceEstimator sequential(graph_);
    baselines::IndependenceEstimator batched(graph_);
    ExpectBatchMatchesSequential(&sequential, &batched, workload);
  }
  {
    baselines::SumRdfEstimator sequential(graph_);
    baselines::SumRdfEstimator batched(graph_);
    std::vector<Query> supported;
    for (const Query& q : workload)
      if (sequential.CanEstimate(q)) supported.push_back(q);
    ASSERT_FALSE(supported.empty());
    ExpectBatchMatchesSequential(&sequential, &batched, supported);
  }
  {
    baselines::WanderJoinEstimator::Options options;
    options.num_walks = 50;
    baselines::WanderJoinEstimator sequential(graph_, options);
    baselines::WanderJoinEstimator batched(graph_, options);
    ExpectBatchMatchesSequential(&sequential, &batched, workload);
  }
  {
    baselines::JsubEstimator::Options options;
    options.num_walks = 50;
    baselines::JsubEstimator sequential(graph_, options);
    baselines::JsubEstimator batched(graph_, options);
    ExpectBatchMatchesSequential(&sequential, &batched, workload);
  }
  {
    baselines::ImprEstimator::Options options;
    options.num_walks = 50;
    baselines::ImprEstimator sequential(graph_, options);
    baselines::ImprEstimator batched(graph_, options);
    ExpectBatchMatchesSequential(&sequential, &batched, workload);
  }
}

}  // namespace
}  // namespace lmkg::core
