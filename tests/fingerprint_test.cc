// Property tests for query::Fingerprint, the canonical query identity
// the serving result cache keys on. The contract under test:
//   * equivalence: queries equal up to pattern order and variable
//     renaming fingerprint identically (stars and chains exactly);
//   * separation: semantically distinct queries fingerprint differently
//     (no collisions across generated workloads);
//   * the fingerprint is insensitive to var_names (display metadata).
#include "query/fingerprint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "query/query.h"
#include "sampling/workload.h"
#include "test_util.h"
#include "util/random.h"

namespace lmkg::query {
namespace {

using lmkg::testing::MakeRandomGraph;

std::vector<Query> GeneratedWorkload(const rdf::Graph& graph,
                                     Topology topology, int size,
                                     size_t count, uint64_t seed) {
  sampling::WorkloadGenerator generator(graph);
  sampling::WorkloadGenerator::Options options;
  options.topology = topology;
  options.query_size = size;
  options.count = count;
  options.seed = seed;
  std::vector<Query> queries;
  for (auto& lq : generator.Generate(options))
    queries.push_back(std::move(lq.query));
  return queries;
}

// Shuffles the pattern order of `q` (same query as a set of patterns).
Query ShufflePatterns(const Query& q, util::Pcg32& rng) {
  Query shuffled = q;
  rng.Shuffle(&shuffled.patterns);
  return shuffled;
}

// Applies a random permutation to the variable ids (an isomorphic
// renaming; num_vars unchanged).
Query RenameVariables(const Query& q, util::Pcg32& rng) {
  Query renamed = q;
  std::vector<int> perm(static_cast<size_t>(q.num_vars));
  for (int v = 0; v < q.num_vars; ++v) perm[v] = v;
  rng.Shuffle(&perm);
  auto apply = [&](PatternTerm* t) {
    if (t->is_var()) t->var = perm[t->var];
  };
  for (auto& pattern : renamed.patterns) {
    apply(&pattern.s);
    apply(&pattern.p);
    apply(&pattern.o);
  }
  renamed.var_names.clear();  // names would be stale; fp ignores them
  return renamed;
}

class FingerprintPropertyTest : public ::testing::Test {
 protected:
  FingerprintPropertyTest()
      : graph_(MakeRandomGraph(80, 8, 900, 21)) {
    for (int size : {2, 3, 5}) {
      for (Topology topology : {Topology::kStar, Topology::kChain}) {
        auto queries =
            GeneratedWorkload(graph_, topology, size, 40,
                              17 * static_cast<uint64_t>(size) +
                                  (topology == Topology::kStar ? 0 : 1));
        workload_.insert(workload_.end(), queries.begin(), queries.end());
      }
    }
  }

  rdf::Graph graph_;
  std::vector<Query> workload_;
  FingerprintScratch scratch_;
};

TEST_F(FingerprintPropertyTest, StableAcrossRepeatedCalls) {
  ASSERT_FALSE(workload_.empty());
  for (const Query& q : workload_) {
    const Fingerprint a = ComputeFingerprint(q, &scratch_);
    const Fingerprint b = ComputeFingerprint(q, &scratch_);
    FingerprintScratch fresh;
    const Fingerprint c = ComputeFingerprint(q, &fresh);
    EXPECT_EQ(a, b);
    EXPECT_EQ(a, c);
  }
}

TEST_F(FingerprintPropertyTest, ShuffledPatternOrderCollides) {
  util::Pcg32 rng(501);
  for (const Query& q : workload_) {
    const Fingerprint original = ComputeFingerprint(q, &scratch_);
    for (int round = 0; round < 4; ++round) {
      const Query shuffled = ShufflePatterns(q, rng);
      EXPECT_EQ(ComputeFingerprint(shuffled, &scratch_), original)
          << QueryToString(q) << " vs shuffled "
          << QueryToString(shuffled);
    }
  }
}

TEST_F(FingerprintPropertyTest, RenamedIsomorphicVariablesCollide) {
  util::Pcg32 rng(502);
  for (const Query& q : workload_) {
    const Fingerprint original = ComputeFingerprint(q, &scratch_);
    for (int round = 0; round < 4; ++round) {
      Query renamed = RenameVariables(q, rng);
      EXPECT_EQ(ComputeFingerprint(renamed, &scratch_), original)
          << QueryToString(q) << " vs renamed " << QueryToString(renamed);
      // Renaming and shuffling together.
      const Query both = ShufflePatterns(renamed, rng);
      EXPECT_EQ(ComputeFingerprint(both, &scratch_), original)
          << QueryToString(q) << " vs " << QueryToString(both);
    }
  }
}

TEST_F(FingerprintPropertyTest, DistinctQueriesDoNotCollide) {
  // Group the workload by fingerprint: queries sharing one must be equal
  // up to pattern order + renaming. Workload queries over one graph are
  // near-duplicates by construction sometimes (the generator can emit
  // the same query twice) — verify sharing a fingerprint implies sharing
  // the canonical string of a sorted/renamed form via a second,
  // independent canonicalization: identical topology, size, and
  // term multisets.
  std::unordered_map<Fingerprint, size_t, FingerprintHasher> first_seen;
  for (size_t i = 0; i < workload_.size(); ++i) {
    const Fingerprint fp = ComputeFingerprint(workload_[i], &scratch_);
    auto [it, inserted] = first_seen.emplace(fp, i);
    if (inserted) continue;
    const Query& a = workload_[it->second];
    const Query& b = workload_[i];
    // A legitimate collision must at minimum agree on size and the
    // multiset of bound term ids; a hash collision between different
    // queries would almost surely disagree.
    ASSERT_EQ(a.size(), b.size())
        << QueryToString(a) << " vs " << QueryToString(b);
    auto bound_ids = [](const Query& q) {
      std::vector<uint64_t> ids;
      for (const auto& t : q.patterns)
        for (const PatternTerm* term : {&t.s, &t.p, &t.o})
          if (term->bound()) ids.push_back(term->value);
      std::sort(ids.begin(), ids.end());
      return ids;
    };
    ASSERT_EQ(bound_ids(a), bound_ids(b))
        << QueryToString(a) << " vs " << QueryToString(b);
  }
}

TEST_F(FingerprintPropertyTest, PerturbedQueriesSeparate) {
  // Flipping one bound term to a different id must change the
  // fingerprint.
  size_t checked = 0;
  for (const Query& q : workload_) {
    const Fingerprint original = ComputeFingerprint(q, &scratch_);
    Query mutated = q;
    bool changed = false;
    for (auto& pattern : mutated.patterns) {
      if (pattern.p.bound()) {
        pattern.p.value = pattern.p.value == 1 ? 2 : pattern.p.value - 1;
        changed = true;
        break;
      }
    }
    if (!changed) continue;
    EXPECT_NE(ComputeFingerprint(mutated, &scratch_), original)
        << QueryToString(q) << " vs " << QueryToString(mutated);
    ++checked;
  }
  EXPECT_GT(checked, workload_.size() / 2);
}

TEST(FingerprintTest, VarNamesDoNotContribute) {
  Query q = MakeStarQuery(
      PatternTerm::Variable(0),
      {{PatternTerm::Bound(3), PatternTerm::Variable(1)},
       {PatternTerm::Bound(5), PatternTerm::Bound(9)}});
  Query named = q;
  named.var_names = {"subject", "object"};
  EXPECT_EQ(ComputeFingerprint(q), ComputeFingerprint(named));
}

TEST(FingerprintTest, TopologyTagSeparatesShapes) {
  // A 1-pattern query takes the star branch; make sure a 2-pattern chain
  // and 2-pattern star over the same terms separate.
  Query star = MakeStarQuery(
      PatternTerm::Bound(1),
      {{PatternTerm::Bound(2), PatternTerm::Variable(0)},
       {PatternTerm::Bound(3), PatternTerm::Variable(1)}});
  Query chain = MakeChainQuery(
      {PatternTerm::Bound(1), PatternTerm::Variable(0),
       PatternTerm::Variable(1)},
      {PatternTerm::Bound(2), PatternTerm::Bound(3)});
  EXPECT_NE(ComputeFingerprint(star), ComputeFingerprint(chain));
}

TEST_F(FingerprintPropertyTest, ShardRoutingIsIsomorphismInvariant) {
  // The serving layer routes a request to ShardHash() % num_shards, so
  // every query the cache would treat as identical must land on the
  // SAME shard — otherwise an isomorphic repeat recomputes on a shard
  // whose cache never saw it. Equal fingerprints already imply equal
  // ShardHash; this pins the property end-to-end through the same
  // shuffle/rename machinery the equivalence tests use.
  util::Pcg32 rng(601);
  for (const Query& q : workload_) {
    const uint64_t route = ComputeFingerprint(q, &scratch_).ShardHash();
    for (int round = 0; round < 4; ++round) {
      Query variant = ShufflePatterns(q, rng);
      variant = RenameVariables(variant, rng);
      EXPECT_EQ(ComputeFingerprint(variant, &scratch_).ShardHash(), route)
          << QueryToString(q) << " re-routed as " << QueryToString(variant);
    }
  }
}

TEST_F(FingerprintPropertyTest, ShardRoutingSpreadsAcrossShards) {
  // ShardHash must actually balance: a generated 240-query workload over
  // 4 shards should put a non-trivial share on every shard (a uniform
  // split is 60 per shard; 15 is > 5 sigma below it). Also pin that the
  // routing is independent of the cache's own hashes — queries sharing a
  // cache sub-shard (fp.hi) must not all collapse onto one serving
  // shard.
  for (const size_t num_shards : {2u, 4u, 8u}) {
    std::vector<size_t> per_shard(num_shards, 0);
    for (const Query& q : workload_) {
      const Fingerprint fp = ComputeFingerprint(q, &scratch_);
      ++per_shard[fp.ShardHash() % num_shards];
    }
    for (size_t s = 0; s < num_shards; ++s)
      EXPECT_GE(per_shard[s], workload_.size() / (num_shards * 4))
          << num_shards << "-shard routing starves shard " << s;
  }
}

// Copies the patterns at ascending `subset` indices and renumbers the
// variables densely — the subquery ComputeSubsetFingerprint promises to
// fingerprint without materializing.
Query MaterializeNormalized(const Query& q, const std::vector<int>& subset) {
  Query sub;
  for (int index : subset) sub.patterns.push_back(q.patterns[index]);
  NormalizeVariables(&sub);
  return sub;
}

TEST_F(FingerprintPropertyTest, SubsetMatchesMaterializedSubquery) {
  // The planner's core identity: fingerprinting a pattern-index subset in
  // place equals materializing + re-normalizing the subquery and
  // fingerprinting that — over EVERY non-empty subset of every generated
  // star/chain query (subsets of these include stars, chains, single
  // patterns, and disconnected composites).
  ASSERT_FALSE(workload_.empty());
  FingerprintScratch materialized_scratch;
  for (const Query& q : workload_) {
    const int n = static_cast<int>(q.patterns.size());
    ASSERT_LE(n, 10);
    for (uint64_t mask = 1; mask < (uint64_t{1} << n); ++mask) {
      std::vector<int> subset;
      for (int i = 0; i < n; ++i)
        if (mask & (uint64_t{1} << i)) subset.push_back(i);
      const Fingerprint in_place =
          ComputeSubsetFingerprint(q, subset, &scratch_);
      const Fingerprint materialized = ComputeFingerprint(
          MaterializeNormalized(q, subset), &materialized_scratch);
      EXPECT_EQ(in_place, materialized)
          << QueryToString(q) << " subset mask " << mask;
    }
  }
}

TEST_F(FingerprintPropertyTest, FullSubsetEqualsWholeQueryFingerprint) {
  for (const Query& q : workload_) {
    std::vector<int> all(q.patterns.size());
    for (size_t i = 0; i < all.size(); ++i) all[i] = static_cast<int>(i);
    EXPECT_EQ(ComputeSubsetFingerprint(q, all, &scratch_),
              ComputeFingerprint(q, &scratch_));
  }
}

TEST_F(FingerprintPropertyTest, SubsetSeparatesDistinctSubsets) {
  // Different subsets of one query fingerprint differently unless they
  // are isomorphic sub-BGPs; count collisions across all subset pairs of
  // each query via a map and require every collision to be a genuine
  // isomorphism witness (same materialized fingerprint).
  for (const Query& q : workload_) {
    const int n = static_cast<int>(q.patterns.size());
    std::unordered_map<Fingerprint, std::vector<uint64_t>,
                       FingerprintHasher>
        by_fp;
    for (uint64_t mask = 1; mask < (uint64_t{1} << n); ++mask) {
      std::vector<int> subset;
      for (int i = 0; i < n; ++i)
        if (mask & (uint64_t{1} << i)) subset.push_back(i);
      by_fp[ComputeSubsetFingerprint(q, subset, &scratch_)].push_back(mask);
    }
    for (const auto& [fp, masks] : by_fp) {
      if (masks.size() < 2) continue;
      // Colliding subsets must be same-size (a sub-BGP determines its
      // pattern count).
      for (const uint64_t mask : masks)
        EXPECT_EQ(std::popcount(mask), std::popcount(masks.front()))
            << "different-size subsets collided in " << QueryToString(q);
    }
  }
}

TEST(FingerprintSubsetTest, SubsetOfCompositeMatchesMaterialized) {
  // A triangle's 2-pattern subsets are chains; its full subset is the
  // composite fallback. All must match their materialized twins.
  Query triangle;
  triangle.patterns.push_back({PatternTerm::Variable(0),
                               PatternTerm::Bound(1),
                               PatternTerm::Variable(1)});
  triangle.patterns.push_back({PatternTerm::Variable(1),
                               PatternTerm::Bound(2),
                               PatternTerm::Variable(2)});
  triangle.patterns.push_back({PatternTerm::Variable(2),
                               PatternTerm::Bound(3),
                               PatternTerm::Variable(0)});
  triangle.num_vars = 3;
  FingerprintScratch scratch;
  for (uint64_t mask = 1; mask < 8; ++mask) {
    std::vector<int> subset;
    for (int i = 0; i < 3; ++i)
      if (mask & (uint64_t{1} << i)) subset.push_back(i);
    EXPECT_EQ(ComputeSubsetFingerprint(triangle, subset, &scratch),
              ComputeFingerprint(MaterializeNormalized(triangle, subset)))
        << "mask " << mask;
  }
}

TEST(FingerprintTest, CompositeFallbackIsStableAndSeparates) {
  // A cycle (not star, not chain) goes through the composite branch:
  // stable across calls, distinct from a different cycle.
  Query cycle;
  cycle.patterns.push_back({PatternTerm::Variable(0), PatternTerm::Bound(1),
                            PatternTerm::Variable(1)});
  cycle.patterns.push_back({PatternTerm::Variable(1), PatternTerm::Bound(2),
                            PatternTerm::Variable(0)});
  cycle.num_vars = 2;
  Query other = cycle;
  other.patterns[1].p = PatternTerm::Bound(3);
  EXPECT_EQ(ComputeFingerprint(cycle), ComputeFingerprint(cycle));
  EXPECT_NE(ComputeFingerprint(cycle), ComputeFingerprint(other));
}

}  // namespace
}  // namespace lmkg::query
