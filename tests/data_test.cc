#include <gtest/gtest.h>

#include "data/dataset.h"
#include "data/lubm_generator.h"
#include "data/swdf_generator.h"
#include "data/yago_generator.h"
#include "sampling/population.h"

namespace lmkg::data {
namespace {

TEST(DatasetTest, PaperProfilesMatchTableOne) {
  const auto& profiles = PaperProfiles();
  ASSERT_EQ(profiles.size(), 3u);
  EXPECT_EQ(profiles[0].name, "swdf");
  EXPECT_EQ(profiles[0].predicates, 171u);
  EXPECT_EQ(profiles[1].name, "lubm");
  EXPECT_EQ(profiles[1].predicates, 19u);
  EXPECT_EQ(profiles[2].name, "yago");
  EXPECT_EQ(profiles[2].predicates, 91u);
}

TEST(DatasetDeathTest, UnknownNameAborts) {
  EXPECT_DEATH(MakeDataset("nope", 1.0, 1), "unknown dataset");
}

TEST(DatasetTest, DeterministicInSeed) {
  rdf::Graph a = MakeDataset("swdf", 0.01, 7);
  rdf::Graph b = MakeDataset("swdf", 0.01, 7);
  ASSERT_EQ(a.num_triples(), b.num_triples());
  EXPECT_EQ(a.triples(), b.triples());
}

TEST(DatasetTest, DifferentSeedsDiffer) {
  rdf::Graph a = MakeDataset("swdf", 0.01, 7);
  rdf::Graph b = MakeDataset("swdf", 0.01, 8);
  EXPECT_NE(a.triples(), b.triples());
}

class DatasetScaleTest : public ::testing::TestWithParam<const char*> {};

TEST_P(DatasetScaleTest, ScaleGrowsTheGraph) {
  std::string name = GetParam();
  rdf::Graph small = MakeDataset(name, 0.005, 3);
  rdf::Graph large = MakeDataset(name, 0.02, 3);
  EXPECT_GT(large.num_triples(), small.num_triples());
  EXPECT_GT(large.num_nodes(), small.num_nodes());
}

TEST_P(DatasetScaleTest, SupportsStarAndChainSampling) {
  rdf::Graph graph = MakeDataset(GetParam(), 0.01, 5);
  // Stars of size 8 and chains of size 8 must exist — the evaluation
  // needs both up to k=8.
  sampling::StarPopulation stars(graph, 8);
  EXPECT_GT(stars.size(), 0.0);
  sampling::ChainPopulation chains(graph, 8);
  EXPECT_GT(chains.size(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, DatasetScaleTest,
                         ::testing::Values("swdf", "lubm", "yago"));

TEST(SwdfTest, MatchesPaperShape) {
  rdf::Graph graph = SwdfGenerator(0.05, 11).Generate();
  // 171 predicates regardless of scale (20 core + 151 misc).
  EXPECT_EQ(graph.num_predicates(), 171u);
  // Scaled triple count within a loose factor of 0.05 * 250K.
  EXPECT_GT(graph.num_triples(), 6000u);
  EXPECT_LT(graph.num_triples(), 25000u);
}

TEST(SwdfTest, FullScaleTripleAndEntityCounts) {
  // Scale 1.0 must approximate Table I: ~250K triples, ~76K entities.
  rdf::Graph graph = SwdfGenerator(1.0, 1).Generate();
  EXPECT_GT(graph.num_triples(), 180000u);
  EXPECT_LT(graph.num_triples(), 330000u);
  EXPECT_GT(graph.num_nodes(), 50000u);
  EXPECT_LT(graph.num_nodes(), 110000u);
}

TEST(SwdfTest, DegreeDistributionIsSkewed) {
  rdf::Graph graph = SwdfGenerator(0.05, 11).Generate();
  // Max in-degree should dwarf the average: hubs exist.
  size_t max_in = 0;
  double total_in = 0;
  for (rdf::TermId v = 1; v <= graph.num_nodes(); ++v) {
    max_in = std::max(max_in, graph.InDegree(v));
    total_in += static_cast<double>(graph.InDegree(v));
  }
  double avg_in = total_in / static_cast<double>(graph.num_nodes());
  EXPECT_GT(static_cast<double>(max_in), 20.0 * avg_in);
}

TEST(LubmTest, HasUnivBenchPredicates) {
  rdf::Graph graph = LubmGenerator(1, 3, 0.2).Generate();
  EXPECT_EQ(graph.num_predicates(), 19u);  // Table I: LUBM has 19
  ASSERT_TRUE(graph.dict().FindPredicate("ub:advisor").has_value());
  ASSERT_TRUE(graph.dict().FindPredicate("ub:takesCourse").has_value());
  ASSERT_TRUE(graph.dict().FindPredicate("rdf:type").has_value());
}

TEST(LubmTest, UniversityCountScalesTriples) {
  rdf::Graph one = LubmGenerator(1, 3, 0.3).Generate();
  rdf::Graph two = LubmGenerator(2, 3, 0.3).Generate();
  EXPECT_GT(two.num_triples(), one.num_triples() * 1.5);
}

TEST(LubmTest, EveryStudentTakesCourses) {
  rdf::Graph graph = LubmGenerator(1, 3, 0.1).Generate();
  auto takes = graph.dict().FindPredicate("ub:takesCourse");
  ASSERT_TRUE(takes.has_value());
  EXPECT_GT(graph.PredicateCount(*takes), 100u);
}

TEST(YagoTest, EntityToTripleRatioIsHigh) {
  rdf::Graph graph = YagoGenerator(0.001, 5).Generate();
  EXPECT_EQ(graph.num_predicates(), 91u);  // Table I: YAGO has 91
  // YAGO's signature: entities ~ 0.8 x triples (huge sparse vocabulary).
  double ratio = static_cast<double>(graph.dict().num_nodes()) /
                 static_cast<double>(graph.num_triples());
  EXPECT_GT(ratio, 0.3);
}

TEST(YagoTest, HubObjectsExist) {
  rdf::Graph graph = YagoGenerator(0.001, 5).Generate();
  size_t max_in = 0;
  for (rdf::TermId v = 1; v <= graph.num_nodes(); ++v)
    max_in = std::max(max_in, graph.InDegree(v));
  EXPECT_GT(max_in, 100u);
}

}  // namespace
}  // namespace lmkg::data
