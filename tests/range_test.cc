#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <sstream>

#include "core/lmkg_s.h"
#include "encoding/query_encoder.h"
#include "query/executor.h"
#include "range/histogram.h"
#include "range/range_encoder.h"
#include "range/range_executor.h"
#include "range/range_independence.h"
#include "range/range_lmkg_s.h"
#include "range/range_query.h"
#include "range/range_workload.h"
#include "test_util.h"
#include "util/math.h"

namespace lmkg::range {
namespace {

using query::PatternTerm;
using query::Query;

PatternTerm B(rdf::TermId id) { return PatternTerm::Bound(id); }
PatternTerm V(int v) { return PatternTerm::Variable(v); }

// Brute-force reference count for range queries: enumerate every variable
// assignment, check triples and bounds. Exponential — tiny graphs only.
uint64_t BruteForceRangeCount(const rdf::Graph& graph, const RangeQuery& q) {
  std::vector<bool> is_pred_var(q.base.num_vars, false);
  for (const auto& t : q.base.patterns)
    if (t.p.is_var()) is_pred_var[t.p.var] = true;
  std::vector<VarBounds> bounds =
      ComputeVarBounds(q, static_cast<rdf::TermId>(graph.num_nodes()));

  std::vector<rdf::TermId> binding(q.base.num_vars, 0);
  uint64_t count = 0;
  std::function<void(int)> recurse = [&](int var) {
    if (var == q.base.num_vars) {
      for (const auto& t : q.base.patterns) {
        auto value = [&](const PatternTerm& term) {
          return term.bound() ? term.value : binding[term.var];
        };
        if (!graph.HasTriple(value(t.s), value(t.p), value(t.o))) return;
      }
      ++count;
      return;
    }
    size_t domain =
        is_pred_var[var] ? graph.num_predicates() : graph.num_nodes();
    for (rdf::TermId v = 1; v <= domain; ++v) {
      if (!is_pred_var[var] && (v < bounds[var].lo || v > bounds[var].hi))
        continue;
      binding[var] = v;
      recurse(var + 1);
    }
  };
  recurse(0);
  return count;
}

// --- EquiDepthHistogram -------------------------------------------------------

TEST(HistogramTest, EmptyHistogram) {
  EquiDepthHistogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_DOUBLE_EQ(h.EstimateCount(1, 100), 0.0);
  EXPECT_DOUBLE_EQ(h.Selectivity(1, 100), 0.0);
}

TEST(HistogramTest, FullRangeIsExact) {
  std::vector<uint32_t> values = {1, 1, 2, 5, 5, 5, 9, 12, 12, 20};
  auto h = EquiDepthHistogram::Build(values, 3);
  EXPECT_DOUBLE_EQ(h.total(), 10.0);
  EXPECT_NEAR(h.EstimateCount(1, 20), 10.0, 1e-9);
  EXPECT_NEAR(h.Selectivity(1, 20), 1.0, 1e-9);
}

TEST(HistogramTest, SingleBucketIsUniform) {
  // 10 values uniformly over ids 1..10, one bucket: half the span is half
  // the mass.
  std::vector<uint32_t> values;
  for (uint32_t v = 1; v <= 10; ++v) values.push_back(v);
  auto h = EquiDepthHistogram::Build(values, 1);
  EXPECT_EQ(h.num_buckets(), 1u);
  EXPECT_NEAR(h.EstimateCount(1, 5), 5.0, 1e-9);
}

TEST(HistogramTest, EqualValuesDoNotStraddleBuckets) {
  // 100 copies of id 7 with tiny depth: every bucket ends at 7, and the
  // estimate for [7, 7] is the full count.
  std::vector<uint32_t> values(100, 7);
  auto h = EquiDepthHistogram::Build(values, 10);
  EXPECT_NEAR(h.EstimateCount(7, 7), 100.0, 1e-9);
  EXPECT_NEAR(h.EstimateCount(1, 6), 0.0, 1e-9);
  EXPECT_NEAR(h.EstimateCount(8, 20), 0.0, 1e-9);
}

TEST(HistogramTest, EmptyRangeAndDisjointRange) {
  std::vector<uint32_t> values = {5, 6, 7, 8};
  auto h = EquiDepthHistogram::Build(values, 2);
  EXPECT_DOUBLE_EQ(h.EstimateCount(9, 3), 0.0);  // hi < lo
  EXPECT_DOUBLE_EQ(h.EstimateCount(20, 30), 0.0);
  EXPECT_DOUBLE_EQ(h.EstimateCount(1, 4), 0.0);
}

TEST(HistogramTest, MonotoneInRangeWidth) {
  util::Pcg32 rng(7, 3);
  std::vector<uint32_t> values;
  for (int i = 0; i < 500; ++i) values.push_back(1 + rng.UniformInt(200));
  auto h = EquiDepthHistogram::Build(values, 16);
  double prev = 0.0;
  for (uint32_t hi = 10; hi <= 200; hi += 10) {
    double count = h.EstimateCount(5, hi);
    EXPECT_GE(count, prev - 1e-9);
    prev = count;
  }
}

// Property sweep: estimates on bucket-aligned ranges are exact; arbitrary
// ranges err at most by the mass of the two boundary buckets.
class HistogramAccuracyTest : public ::testing::TestWithParam<int> {};

TEST_P(HistogramAccuracyTest, BoundedErrorOnRandomData) {
  const int buckets = GetParam();
  util::Pcg32 rng(11, static_cast<uint64_t>(buckets));
  std::vector<uint32_t> values;
  for (int i = 0; i < 2000; ++i)
    values.push_back(1 + static_cast<uint32_t>(
                             std::pow(rng.NextDouble(), 3.0) * 499));
  auto h = EquiDepthHistogram::Build(values, buckets);
  double max_bucket_mass = 0.0;
  // Upper bound on one bucket's mass: ceil(n / buckets) + duplicates can
  // extend a bucket; 3x slack is generous and catches gross errors.
  double depth_bound = 3.0 * std::ceil(2000.0 / buckets);
  for (int trial = 0; trial < 50; ++trial) {
    uint32_t lo = 1 + rng.UniformInt(500);
    uint32_t hi = lo + rng.UniformInt(100);
    double est = h.EstimateCount(lo, hi);
    double exact = 0.0;
    for (uint32_t v : values) exact += (v >= lo && v <= hi) ? 1.0 : 0.0;
    EXPECT_NEAR(est, exact, 2.0 * depth_bound)
        << "[" << lo << ", " << hi << "]";
    max_bucket_mass = std::max(max_bucket_mass, std::abs(est - exact));
  }
}

INSTANTIATE_TEST_SUITE_P(Buckets, HistogramAccuracyTest,
                         ::testing::Values(1, 4, 16, 64));

TEST(HistogramTest, PredicateHistogramsMatchPerPredicateCounts) {
  rdf::Graph graph = lmkg::testing::MakeRandomGraph(30, 4, 300, 5);
  PredicateHistograms hists(graph, 8);
  for (rdf::TermId p = 1; p <= graph.num_predicates(); ++p) {
    EXPECT_NEAR(hists.histogram(p).total(),
                static_cast<double>(graph.PredicateCount(p)), 1e-9);
    EXPECT_NEAR(hists.Selectivity(p, 1,
                                  static_cast<uint32_t>(graph.num_nodes())),
                1.0, 1e-9);
  }
  EXPECT_GT(hists.MemoryBytes(), 0u);
}

// --- RangeQuery validation ----------------------------------------------------

TEST(RangeQueryTest, ValidAndInvalid) {
  RangeQuery q;
  q.base = query::MakeStarQuery(V(0), {{B(1), V(1)}, {B(2), B(5)}});
  q.ranges = {{0, 3, 9}};
  EXPECT_TRUE(ValidRangeQuery(q));

  RangeQuery bad_index = q;
  bad_index.ranges = {{5, 3, 9}};
  EXPECT_FALSE(ValidRangeQuery(bad_index));

  RangeQuery bound_object = q;
  bound_object.ranges = {{1, 3, 9}};  // pattern 1's object is bound
  EXPECT_FALSE(ValidRangeQuery(bound_object));

  RangeQuery inverted = q;
  inverted.ranges = {{0, 9, 3}};
  EXPECT_FALSE(ValidRangeQuery(inverted));

  RangeQuery zero_lo = q;
  zero_lo.ranges = {{0, 0, 9}};
  EXPECT_FALSE(ValidRangeQuery(zero_lo));
}

TEST(RangeQueryTest, VarBoundsIntersectAcrossPatterns) {
  // ?1 constrained by two patterns: bounds intersect.
  RangeQuery q;
  q.base = query::MakeStarQuery(V(0), {{B(1), V(1)}, {B(2), V(1)}});
  q.ranges = {{0, 3, 20}, {1, 10, 30}};
  ASSERT_TRUE(ValidRangeQuery(q));
  auto bounds = ComputeVarBounds(q, 100);
  EXPECT_EQ(bounds[1].lo, 10u);
  EXPECT_EQ(bounds[1].hi, 20u);
  EXPECT_EQ(bounds[0].lo, 1u);  // unconstrained
  EXPECT_EQ(bounds[0].hi, 100u);
}

TEST(RangeQueryTest, ToStringMentionsRanges) {
  RangeQuery q;
  q.base = query::MakeStarQuery(V(0), {{B(1), V(1)}});
  q.ranges = {{0, 5, 90}};
  std::string s = RangeQueryToString(q);
  EXPECT_NE(s.find("in [5, 90]"), std::string::npos) << s;
}

// --- RangeExecutor ------------------------------------------------------------

TEST(RangeExecutorTest, NoRangesMatchesPlainExecutor) {
  rdf::Graph graph = lmkg::testing::MakeRandomGraph(15, 3, 100, 9);
  RangeExecutor range_executor(graph);
  query::Executor executor(graph);
  RangeQuery q;
  q.base = query::MakeStarQuery(V(0), {{B(1), V(1)}, {B(2), V(2)}});
  EXPECT_EQ(range_executor.Count(q), executor.Count(q.base));
}

TEST(RangeExecutorTest, ContradictoryRangeIsZero) {
  rdf::Graph graph = lmkg::testing::MakeRandomGraph(15, 3, 100, 9);
  RangeExecutor executor(graph);
  RangeQuery q;
  q.base = query::MakeStarQuery(V(0), {{B(1), V(1)}, {B(2), V(1)}});
  q.ranges = {{0, 1, 5}, {1, 10, 15}};  // ?1 in [1,5] ∩ [10,15] = ∅
  EXPECT_EQ(executor.Count(q), 0u);
}

TEST(RangeExecutorTest, LimitStopsEarly) {
  rdf::Graph graph = lmkg::testing::MakeRandomGraph(15, 3, 200, 10);
  RangeExecutor executor(graph);
  RangeQuery q;
  q.base = query::MakeStarQuery(V(0), {{B(1), V(1)}});
  q.ranges = {{0, 1, 15}};
  uint64_t full = executor.Count(q);
  if (full > 2) {
    EXPECT_GE(executor.Count(q, 2), 2u);
  }
}

// Parameterized brute-force verification over random graphs, topologies,
// and range placements.
struct RangeExecCase {
  uint64_t graph_seed;
  int query_size;
  bool star;
};

class RangeExecutorBruteForceTest
    : public ::testing::TestWithParam<RangeExecCase> {};

TEST_P(RangeExecutorBruteForceTest, MatchesBruteForce) {
  const RangeExecCase c = GetParam();
  rdf::Graph graph = lmkg::testing::MakeRandomGraph(12, 3, 80, c.graph_seed);
  RangeExecutor executor(graph);
  util::Pcg32 rng(c.graph_seed * 31 + 7, 2);
  const auto nodes = static_cast<uint32_t>(graph.num_nodes());
  int verified = 0;
  for (int trial = 0; trial < 40; ++trial) {
    RangeQuery q;
    if (c.star) {
      std::vector<std::pair<PatternTerm, PatternTerm>> pairs;
      for (int i = 0; i < c.query_size; ++i)
        pairs.emplace_back(B(1 + rng.UniformInt(3)), V(i + 1));
      q.base = query::MakeStarQuery(V(0), pairs);
    } else {
      std::vector<PatternTerm> chain_nodes;
      std::vector<PatternTerm> preds;
      for (int i = 0; i <= c.query_size; ++i)
        chain_nodes.push_back(V(i));
      for (int i = 0; i < c.query_size; ++i)
        preds.push_back(B(1 + rng.UniformInt(3)));
      q.base = query::MakeChainQuery(chain_nodes, preds);
    }
    // 1-2 random ranges on random patterns.
    int nranges = 1 + static_cast<int>(rng.UniformInt(2));
    for (int r = 0; r < nranges; ++r) {
      uint32_t lo = 1 + rng.UniformInt(nodes);
      uint32_t hi = std::min(nodes, lo + rng.UniformInt(nodes / 2 + 1));
      q.ranges.push_back(
          {static_cast<int>(rng.UniformInt(
               static_cast<uint32_t>(c.query_size))),
           lo, hi});
    }
    if (!ValidRangeQuery(q)) continue;
    ++verified;
    EXPECT_EQ(executor.Count(q), BruteForceRangeCount(graph, q))
        << RangeQueryToString(q);
  }
  EXPECT_GE(verified, 20);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, RangeExecutorBruteForceTest,
    ::testing::Values(RangeExecCase{1, 2, true}, RangeExecCase{2, 2, false},
                      RangeExecCase{3, 3, true}, RangeExecCase{4, 3, false},
                      RangeExecCase{5, 2, true}, RangeExecCase{6, 2, false}));

// --- RangeWorkloadGenerator ----------------------------------------------------

TEST(RangeWorkloadTest, GeneratesValidLabeledQueries) {
  rdf::Graph graph = lmkg::testing::MakeRandomGraph(80, 6, 800, 13);
  RangeWorkloadGenerator generator(graph);
  RangeWorkloadGenerator::Options options;
  options.query_size = 2;
  options.count = 50;
  options.seed = 4;
  auto workload = generator.Generate(options);
  ASSERT_GE(workload.size(), 20u);
  RangeExecutor executor(graph);
  for (const auto& lq : workload) {
    EXPECT_TRUE(ValidRangeQuery(lq.query));
    EXPECT_GE(lq.query.ranges.size(), 1u);
    EXPECT_GE(lq.cardinality, 1.0);
    EXPECT_DOUBLE_EQ(lq.cardinality, executor.Cardinality(lq.query));
  }
}

TEST(RangeWorkloadTest, ChainWorkload) {
  rdf::Graph graph = lmkg::testing::MakeRandomGraph(80, 6, 800, 14);
  RangeWorkloadGenerator generator(graph);
  RangeWorkloadGenerator::Options options;
  options.topology = query::Topology::kChain;
  options.query_size = 3;
  options.count = 40;
  options.seed = 6;
  auto workload = generator.Generate(options);
  ASSERT_GE(workload.size(), 10u);
  for (const auto& lq : workload) {
    EXPECT_TRUE(ValidRangeQuery(lq.query));
    EXPECT_EQ(lq.size, 3);
  }
}

TEST(RangeWorkloadTest, DeterministicInSeed) {
  rdf::Graph graph = lmkg::testing::MakeRandomGraph(60, 5, 500, 15);
  RangeWorkloadGenerator generator(graph);
  RangeWorkloadGenerator::Options options;
  options.count = 25;
  options.seed = 77;
  auto a = generator.Generate(options);
  auto b = generator.Generate(options);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(RangeQueryToString(a[i].query),
              RangeQueryToString(b[i].query));
}

// --- RangeQueryEncoder ---------------------------------------------------------

class RangeEncoderTest : public ::testing::Test {
 protected:
  RangeEncoderTest()
      : graph_(lmkg::testing::MakeRandomGraph(40, 4, 400, 17)),
        histograms_(graph_, 8) {}

  std::unique_ptr<RangeQueryEncoder> MakeEncoder(int max_patterns) {
    return std::make_unique<RangeQueryEncoder>(
        encoding::MakeSgEncoder(graph_, max_patterns + 1, max_patterns,
                                encoding::TermEncoding::kBinary),
        &histograms_, max_patterns);
  }

  rdf::Graph graph_;
  PredicateHistograms histograms_;
};

TEST_F(RangeEncoderTest, WidthAddsTwoSlotsPerPattern) {
  auto encoder = MakeEncoder(3);
  EXPECT_EQ(encoder->width(), encoder->base().width() + 6);
}

TEST_F(RangeEncoderTest, UnconstrainedSlotsEncodeFullSelectivity) {
  auto encoder = MakeEncoder(2);
  RangeQuery q;
  q.base = query::MakeStarQuery(V(0), {{B(1), V(1)}, {B(2), V(2)}});
  auto v = encoder->EncodeToVector(q);
  const size_t base = encoder->base().width();
  EXPECT_FLOAT_EQ(v[base + 0], 0.0f);
  EXPECT_FLOAT_EQ(v[base + 1], 1.0f);
  EXPECT_FLOAT_EQ(v[base + 2], 0.0f);
  EXPECT_FLOAT_EQ(v[base + 3], 1.0f);
}

TEST_F(RangeEncoderTest, ConstrainedSlotCarriesHistogramSelectivity) {
  auto encoder = MakeEncoder(2);
  RangeQuery q;
  q.base = query::MakeStarQuery(V(0), {{B(1), V(1)}, {B(2), V(2)}});
  const auto nodes = static_cast<uint32_t>(graph_.num_nodes());
  q.ranges = {{0, 1, nodes / 2}};
  auto v = encoder->EncodeToVector(q);
  const size_t base = encoder->base().width();
  EXPECT_FLOAT_EQ(v[base + 0], 1.0f);
  EXPECT_NEAR(v[base + 1], histograms_.Selectivity(1, 1, nodes / 2), 1e-6);
  // Narrower range, smaller or equal selectivity feature.
  RangeQuery narrow = q;
  narrow.ranges = {{0, 1, nodes / 8}};
  auto w = encoder->EncodeToVector(narrow);
  EXPECT_LE(w[base + 1], v[base + 1] + 1e-6);
}

TEST_F(RangeEncoderTest, RejectsOversizeAndInvalid) {
  auto encoder = MakeEncoder(2);
  RangeQuery big;
  big.base = query::MakeStarQuery(
      V(0), {{B(1), V(1)}, {B(2), V(2)}, {B(3), V(3)}});
  EXPECT_FALSE(encoder->CanEncode(big));
  RangeQuery invalid;
  invalid.base = query::MakeStarQuery(V(0), {{B(1), V(1)}});
  invalid.ranges = {{0, 9, 3}};
  EXPECT_FALSE(encoder->CanEncode(invalid));
}

// --- RangeLmkgS + independence baseline ----------------------------------------

class RangeModelTest : public ::testing::Test {
 protected:
  RangeModelTest()
      : graph_(lmkg::testing::MakeRandomGraph(60, 5, 700, 19)),
        histograms_(graph_, 16) {}

  std::unique_ptr<RangeLmkgS> TrainModel(
      const std::vector<LabeledRangeQuery>& train) {
    core::LmkgSConfig config;
    config.hidden_dim = 48;
    config.epochs = 30;
    config.seed = 5;
    auto model = std::make_unique<RangeLmkgS>(
        std::make_unique<RangeQueryEncoder>(
            encoding::MakeSgEncoder(graph_, 3, 2,
                                    encoding::TermEncoding::kBinary),
            &histograms_, 2),
        config);
    model->Train(train);
    return model;
  }

  std::vector<LabeledRangeQuery> MakeWorkload(size_t count, uint64_t seed) {
    RangeWorkloadGenerator generator(graph_);
    RangeWorkloadGenerator::Options options;
    options.query_size = 2;
    options.count = count;
    options.seed = seed;
    return generator.Generate(options);
  }

  rdf::Graph graph_;
  PredicateHistograms histograms_;
};

TEST_F(RangeModelTest, TrainsAndEstimatesFinitePositives) {
  auto train = MakeWorkload(150, 1);
  ASSERT_GE(train.size(), 50u);
  auto model = TrainModel(train);
  for (size_t i = 0; i < std::min<size_t>(train.size(), 20); ++i) {
    ASSERT_TRUE(model->CanEstimate(train[i].query));
    double est = model->EstimateCardinality(train[i].query);
    EXPECT_TRUE(std::isfinite(est));
    EXPECT_GE(est, 0.0);
  }
  EXPECT_GT(model->MemoryBytes(), 0u);
}

TEST_F(RangeModelTest, SaveLoadRoundTripPreservesEstimates) {
  auto train = MakeWorkload(120, 2);
  ASSERT_GE(train.size(), 40u);
  auto model = TrainModel(train);
  std::stringstream buffer;
  ASSERT_TRUE(model->Save(buffer).ok());

  core::LmkgSConfig config;
  config.hidden_dim = 48;
  config.epochs = 30;
  config.seed = 5;
  RangeLmkgS restored(
      std::make_unique<RangeQueryEncoder>(
          encoding::MakeSgEncoder(graph_, 3, 2,
                                  encoding::TermEncoding::kBinary),
          &histograms_, 2),
      config);
  ASSERT_TRUE(restored.Load(buffer).ok());
  for (size_t i = 0; i < std::min<size_t>(train.size(), 10); ++i) {
    EXPECT_DOUBLE_EQ(restored.EstimateCardinality(train[i].query),
                     model->EstimateCardinality(train[i].query));
  }
}

TEST_F(RangeModelTest, LoadRejectsTruncatedStream) {
  core::LmkgSConfig config;
  config.hidden_dim = 48;
  config.seed = 5;
  RangeLmkgS model(
      std::make_unique<RangeQueryEncoder>(
          encoding::MakeSgEncoder(graph_, 3, 2,
                                  encoding::TermEncoding::kBinary),
          &histograms_, 2),
      config);
  std::stringstream truncated;
  truncated << "xy";
  EXPECT_FALSE(model.Load(truncated).ok());
}

TEST_F(RangeModelTest, BeatsIndependenceBaselineOnHeldOutQueries) {
  auto train = MakeWorkload(250, 3);
  ASSERT_GE(train.size(), 80u);
  auto test = MakeWorkload(60, 99);
  ASSERT_GE(test.size(), 20u);
  auto model = TrainModel(train);
  RangeIndependenceEstimator baseline(graph_, &histograms_);

  std::vector<double> model_q, baseline_q;
  for (const auto& lq : test) {
    if (!model->CanEstimate(lq.query)) continue;
    model_q.push_back(
        util::QError(model->EstimateCardinality(lq.query), lq.cardinality));
    baseline_q.push_back(util::QError(
        baseline.EstimateCardinality(lq.query), lq.cardinality));
  }
  double model_median = util::QErrorStats::Compute(model_q).median;
  double baseline_median = util::QErrorStats::Compute(baseline_q).median;
  // The learned estimator sees correlations the independence baseline
  // cannot; allow generous slack for the small training budget.
  EXPECT_LE(model_median, baseline_median * 2.0)
      << "model=" << model_median << " baseline=" << baseline_median;
}

TEST_F(RangeModelTest, IndependenceBaselineIsExactOnSinglePatternFullRange) {
  RangeIndependenceEstimator baseline(graph_, &histograms_);
  RangeQuery q;
  q.base = query::MakeStarQuery(V(0), {{B(1), V(1)}});
  q.ranges = {{0, 1, static_cast<uint32_t>(graph_.num_nodes())}};
  query::Executor executor(graph_);
  EXPECT_NEAR(baseline.EstimateCardinality(q), executor.Cardinality(q.base),
              executor.Cardinality(q.base) * 0.01 + 1e-6);
}

}  // namespace
}  // namespace lmkg::range
