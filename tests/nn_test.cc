#include <gtest/gtest.h>

#include <cmath>

#include "nn/adam.h"
#include "nn/gradcheck.h"
#include "nn/layer.h"
#include "nn/loss.h"
#include "nn/simd.h"
#include "nn/tensor.h"
#include "util/random.h"

namespace lmkg::nn {
namespace {

// --- tensor ops ------------------------------------------------------------

TEST(TensorTest, MatMulAgainstHandComputed) {
  Matrix a(2, 3), b(3, 2), out;
  float av[] = {1, 2, 3, 4, 5, 6};
  float bv[] = {7, 8, 9, 10, 11, 12};
  std::copy(av, av + 6, a.data());
  std::copy(bv, bv + 6, b.data());
  MatMul(a, b, &out);
  EXPECT_FLOAT_EQ(out.at(0, 0), 58);
  EXPECT_FLOAT_EQ(out.at(0, 1), 64);
  EXPECT_FLOAT_EQ(out.at(1, 0), 139);
  EXPECT_FLOAT_EQ(out.at(1, 1), 154);
}

TEST(TensorTest, TransposedMatMulsAgree) {
  util::Pcg32 rng(1);
  Matrix a(4, 3), b(4, 5);
  FillGaussian(&a, 1.0f, rng);
  FillGaussian(&b, 1.0f, rng);
  // aᵀ b via MatMulTransA must equal manual transpose + MatMul.
  Matrix at(3, 4);
  for (size_t i = 0; i < 4; ++i)
    for (size_t j = 0; j < 3; ++j) at.at(j, i) = a.at(i, j);
  Matrix expected, got;
  MatMul(at, b, &expected);
  MatMulTransA(a, b, &got);
  for (size_t i = 0; i < expected.size(); ++i)
    EXPECT_NEAR(expected.data()[i], got.data()[i], 1e-5);
}

TEST(TensorTest, MatMulTransB) {
  util::Pcg32 rng(2);
  Matrix a(2, 3), b(4, 3);
  FillGaussian(&a, 1.0f, rng);
  FillGaussian(&b, 1.0f, rng);
  Matrix bt(3, 4);
  for (size_t i = 0; i < 4; ++i)
    for (size_t j = 0; j < 3; ++j) bt.at(j, i) = b.at(i, j);
  Matrix expected, got;
  MatMul(a, bt, &expected);
  MatMulTransB(a, b, &got);
  for (size_t i = 0; i < expected.size(); ++i)
    EXPECT_NEAR(expected.data()[i], got.data()[i], 1e-5);
}

TEST(TensorTest, RowOpsAndHadamard) {
  Matrix m(2, 2);
  m.Fill(1.0f);
  Matrix bias(1, 2);
  bias.at(0, 0) = 5;
  bias.at(0, 1) = -1;
  AddRowVector(&m, bias);
  EXPECT_FLOAT_EQ(m.at(0, 0), 6);
  EXPECT_FLOAT_EQ(m.at(1, 1), 0);
  Matrix sums(1, 2);
  sums.SetZero();
  SumRowsAccum(m, &sums);
  EXPECT_FLOAT_EQ(sums.at(0, 0), 12);
  EXPECT_FLOAT_EQ(sums.at(0, 1), 0);
  Matrix mask(2, 2);
  mask.SetZero();
  mask.at(0, 0) = 1.0f;
  HadamardInPlace(&m, mask);
  EXPECT_FLOAT_EQ(m.at(0, 0), 6);
  EXPECT_FLOAT_EQ(m.at(1, 0), 0);
}

TEST(TensorDeathTest, ShapeMismatchAborts) {
  Matrix a(2, 3), b(2, 2), out;
  EXPECT_DEATH(MatMul(a, b, &out), "LMKG_CHECK");
}

// --- tiled kernels vs naive reference ---------------------------------------

// Textbook i-j-l product, the reference the tiled/blocked kernels and
// their sparse/dense dispatch must reproduce.
Matrix NaiveMatMul(const Matrix& a, const Matrix& b) {
  Matrix out(a.rows(), b.cols());
  for (size_t i = 0; i < a.rows(); ++i)
    for (size_t j = 0; j < b.cols(); ++j) {
      float sum = 0.0f;
      for (size_t l = 0; l < a.cols(); ++l)
        sum += a.at(i, l) * b.at(l, j);
      out.at(i, j) = sum;
    }
  return out;
}

// Random shape in [1, 70] per dimension; `sparsity` is the fraction of
// entries zeroed (exercises the sparse/dense kernel dispatch and the
// row-block + column-tile remainders).
Matrix RandomMatrix(size_t rows, size_t cols, double sparsity,
                    util::Pcg32& rng) {
  Matrix m(rows, cols);
  FillGaussian(&m, 1.0f, rng);
  for (size_t i = 0; i < m.size(); ++i)
    if (rng.NextDouble() < sparsity) m.data()[i] = 0.0f;
  return m;
}

TEST(TensorPropertyTest, TiledMatMulMatchesNaiveOverRandomShapes) {
  util::Pcg32 rng(77);
  for (int round = 0; round < 60; ++round) {
    const size_t m = 1 + rng.UniformInt(70);
    const size_t k = 1 + rng.UniformInt(70);
    const size_t n = 1 + rng.UniformInt(70);
    const double sparsity = rng.NextDouble();  // 0 = dense, →1 = sparse
    Matrix a = RandomMatrix(m, k, sparsity, rng);
    Matrix b = RandomMatrix(k, n, 0.0, rng);
    Matrix expected = NaiveMatMul(a, b);
    Matrix got;
    MatMul(a, b, &got);
    ASSERT_EQ(got.rows(), m);
    ASSERT_EQ(got.cols(), n);
    for (size_t i = 0; i < expected.size(); ++i)
      ASSERT_NEAR(expected.data()[i], got.data()[i], 1e-4)
          << "shape " << m << "x" << k << "x" << n << " round " << round;
  }
}

TEST(TensorPropertyTest, MatMulTransAMatchesNaiveOverRandomShapes) {
  util::Pcg32 rng(78);
  for (int round = 0; round < 40; ++round) {
    const size_t k = 1 + rng.UniformInt(70);
    const size_t m = 1 + rng.UniformInt(70);
    const size_t n = 1 + rng.UniformInt(70);
    Matrix a = RandomMatrix(k, m, rng.NextDouble(), rng);
    Matrix b = RandomMatrix(k, n, 0.0, rng);
    Matrix at(m, k);
    for (size_t i = 0; i < k; ++i)
      for (size_t j = 0; j < m; ++j) at.at(j, i) = a.at(i, j);
    Matrix expected = NaiveMatMul(at, b);
    Matrix got;
    MatMulTransA(a, b, &got);
    for (size_t i = 0; i < expected.size(); ++i)
      ASSERT_NEAR(expected.data()[i], got.data()[i], 1e-4)
          << "shape " << k << "x" << m << "x" << n << " round " << round;
  }
}

TEST(TensorPropertyTest, MatMulTransBMatchesNaiveOverRandomShapes) {
  util::Pcg32 rng(79);
  for (int round = 0; round < 40; ++round) {
    const size_t m = 1 + rng.UniformInt(70);
    const size_t k = 1 + rng.UniformInt(70);
    const size_t n = 1 + rng.UniformInt(70);
    Matrix a = RandomMatrix(m, k, rng.NextDouble(), rng);
    Matrix b = RandomMatrix(n, k, 0.0, rng);
    Matrix bt(k, n);
    for (size_t i = 0; i < n; ++i)
      for (size_t j = 0; j < k; ++j) bt.at(j, i) = b.at(i, j);
    Matrix expected = NaiveMatMul(a, bt);
    Matrix got;
    MatMulTransB(a, b, &got);
    for (size_t i = 0; i < expected.size(); ++i)
      ASSERT_NEAR(expected.data()[i], got.data()[i], 1e-4)
          << "shape " << m << "x" << k << "x" << n << " round " << round;
  }
}

// A row's result must not depend on the batch it is computed in — the
// foundation of the batch == per-query estimator guarantee.
TEST(TensorPropertyTest, RowResultsIndependentOfBatchSize) {
  util::Pcg32 rng(80);
  for (double sparsity : {0.0, 0.5, 0.95}) {
    Matrix a = RandomMatrix(37, 53, sparsity, rng);
    Matrix b = RandomMatrix(53, 29, 0.0, rng);
    Matrix full;
    MatMul(a, b, &full);
    for (size_t i = 0; i < a.rows(); ++i) {
      Matrix row(1, a.cols());
      std::copy(a.row(i), a.row(i) + a.cols(), row.data());
      Matrix single;
      MatMul(row, b, &single);
      for (size_t j = 0; j < b.cols(); ++j)
        ASSERT_EQ(full.at(i, j), single.at(0, j))
            << "row " << i << " col " << j << " sparsity " << sparsity;
    }
  }
}

// SIMD-vs-scalar equivalence at the lane boundaries: the explicit
// kernels (nn/simd.h — AVX-512/AVX2/NEON, scalar fallback) split every
// row into a vector region and a scalar tail; these widths straddle
// every split point (8/16-lane multiples ±1), so the vector body, the
// narrower tiles, and the scalar tail all get exercised against the
// naive reference.
TEST(TensorPropertyTest, SimdKernelsMatchScalarAtLaneBoundaries) {
  util::Pcg32 rng(81);
  for (size_t n : {1u, 7u, 8u, 9u, 15u, 16u, 17u, 31u, 32u, 33u, 63u, 64u,
                   65u, 127u, 128u, 129u}) {
    for (double sparsity : {0.0, 0.9}) {
      Matrix a = RandomMatrix(6, 40, sparsity, rng);
      Matrix b = RandomMatrix(40, n, 0.0, rng);
      Matrix expected = NaiveMatMul(a, b);
      Matrix got;
      MatMul(a, b, &got);
      for (size_t i = 0; i < expected.size(); ++i)
        ASSERT_NEAR(expected.data()[i], got.data()[i], 1e-4)
            << "n=" << n << " sparsity=" << sparsity;
    }
  }
}

// The unit-valued sparse input path (estimation hot path) must be
// bit-identical to the dense product of the equivalent 0/1 matrix —
// add(w, acc) == fma(1.0, w, acc) exactly, and the ascending column
// indices replay the dense kernels' accumulation order.
TEST(TensorPropertyTest, MatMulSparseUnitBitEqualsDense) {
  util::Pcg32 rng(82);
  for (size_t n : {1u, 17u, 64u, 128u, 130u}) {
    const size_t m = 9, k = 75;
    Matrix dense(m, k);
    SparseRows sparse;
    sparse.Clear(k);
    for (size_t i = 0; i < m; ++i) {
      for (size_t l = 0; l < k; ++l) {
        if (rng.NextDouble() < 0.12) {
          dense.at(i, l) = 1.0f;
          sparse.col.push_back(static_cast<uint32_t>(l));
        }
      }
      sparse.row_begin.push_back(sparse.col.size());
    }
    Matrix b = RandomMatrix(k, n, 0.0, rng);
    Matrix expected, got;
    MatMul(dense, b, &expected);
    MatMulSparseUnit(sparse, b, &got);
    ASSERT_EQ(got.rows(), m);
    ASSERT_EQ(got.cols(), n);
    for (size_t i = 0; i < expected.size(); ++i)
      ASSERT_EQ(expected.data()[i], got.data()[i]) << "n=" << n;
  }
}

// Whole-network sparse-input forward == dense forward, bit for bit.
TEST(LayerTest, SequentialForwardSparseInputBitEqualsDense) {
  util::Pcg32 rng(83);
  Sequential net;
  net.Add(std::make_unique<Dense>(50, 24, rng));
  net.Add(std::make_unique<Relu>());
  net.Add(std::make_unique<Dense>(24, 1, rng));
  net.Add(std::make_unique<Sigmoid>());

  const size_t batch = 13;
  Matrix dense(batch, 50);
  SparseRows sparse;
  sparse.Clear(50);
  for (size_t i = 0; i < batch; ++i) {
    for (size_t l = 0; l < 50; ++l) {
      if (rng.NextDouble() < 0.15) {
        dense.at(i, l) = 1.0f;
        sparse.col.push_back(static_cast<uint32_t>(l));
      }
    }
    sparse.row_begin.push_back(sparse.col.size());
  }
  Matrix expected = net.Forward(dense, /*training=*/false);  // copy
  const Matrix& got = net.ForwardSparseInput(sparse);
  ASSERT_EQ(got.rows(), batch);
  ASSERT_EQ(got.cols(), 1u);
  for (size_t i = 0; i < expected.size(); ++i)
    ASSERT_EQ(expected.data()[i], got.data()[i]) << "row " << i;
}

TEST(TensorTest, ResizeZeroedClearsEveryElement) {
  Matrix m(3, 5);
  m.Fill(7.0f);
  m.ResizeZeroed(5, 3);
  ASSERT_EQ(m.rows(), 5u);
  ASSERT_EQ(m.cols(), 3u);
  for (size_t i = 0; i < m.size(); ++i) EXPECT_EQ(m.data()[i], 0.0f);
}

// --- layers ------------------------------------------------------------------

TEST(LayerTest, DenseForwardShapeAndBias) {
  util::Pcg32 rng(3);
  Dense dense(3, 2, rng);
  dense.weights().SetZero();
  dense.bias().at(0, 0) = 1.5f;
  dense.bias().at(0, 1) = -2.0f;
  Matrix in(4, 3), out;
  in.Fill(1.0f);
  dense.Forward(in, &out, false);
  ASSERT_EQ(out.rows(), 4u);
  ASSERT_EQ(out.cols(), 2u);
  EXPECT_FLOAT_EQ(out.at(0, 0), 1.5f);
  EXPECT_FLOAT_EQ(out.at(3, 1), -2.0f);
}

TEST(LayerTest, ReluForwardBackward) {
  Relu relu;
  Matrix in(1, 4), out, dout(1, 4), din;
  float xs[] = {-1, 0, 2, -3};
  std::copy(xs, xs + 4, in.data());
  relu.Forward(in, &out, false);
  EXPECT_FLOAT_EQ(out.at(0, 0), 0);
  EXPECT_FLOAT_EQ(out.at(0, 2), 2);
  dout.Fill(1.0f);
  relu.Backward(in, out, dout, &din);
  EXPECT_FLOAT_EQ(din.at(0, 0), 0);
  EXPECT_FLOAT_EQ(din.at(0, 2), 1);
}

TEST(LayerTest, SigmoidRangeAndGradient) {
  Sigmoid sigmoid;
  Matrix in(1, 3), out;
  in.at(0, 0) = -100;
  in.at(0, 1) = 0;
  in.at(0, 2) = 100;
  sigmoid.Forward(in, &out, false);
  EXPECT_NEAR(out.at(0, 0), 0.0, 1e-6);
  EXPECT_NEAR(out.at(0, 1), 0.5, 1e-6);
  EXPECT_NEAR(out.at(0, 2), 1.0, 1e-6);
}

TEST(LayerTest, DropoutTrainVsEval) {
  Dropout dropout(0.5, 42);
  Matrix in(1, 1000), out;
  in.Fill(1.0f);
  dropout.Forward(in, &out, /*training=*/false);
  for (size_t i = 0; i < out.size(); ++i)
    EXPECT_FLOAT_EQ(out.data()[i], 1.0f);
  dropout.Forward(in, &out, /*training=*/true);
  int zeros = 0;
  double sum = 0;
  for (size_t i = 0; i < out.size(); ++i) {
    if (out.data()[i] == 0.0f) ++zeros;
    sum += out.data()[i];
  }
  EXPECT_GT(zeros, 400);
  EXPECT_LT(zeros, 600);
  // Inverted dropout keeps the expectation.
  EXPECT_NEAR(sum / 1000.0, 1.0, 0.1);
}

TEST(LayerTest, MaskedDenseRespectsMaskThroughTraining) {
  util::Pcg32 rng(4);
  MaskedDense layer(2, 2, rng);
  Matrix mask(2, 2);
  mask.Fill(1.0f);
  mask.at(0, 1) = 0.0f;  // kill connection input0 -> output1
  layer.SetMask(std::move(mask));

  Matrix in(1, 2), out;
  in.at(0, 0) = 123.0f;
  in.at(0, 1) = 0.0f;
  layer.Forward(in, &out, true);
  float before = out.at(0, 1);  // only bias contributes
  EXPECT_FLOAT_EQ(before, layer.bias().at(0, 1));

  // A gradient step must not revive the masked weight.
  std::vector<ParamRef> params;
  layer.CollectParams(&params);
  Matrix dout(1, 2);
  dout.Fill(1.0f);
  Matrix din;
  for (ParamRef p : params) p.grad->SetZero();
  layer.Backward(in, out, dout, &din);
  EXPECT_FLOAT_EQ(params[0].grad->at(0, 1), 0.0f);  // masked grad is zero
  Adam adam(params, 0.1f);
  adam.Step();
  layer.Forward(in, &out, true);
  EXPECT_FLOAT_EQ(out.at(0, 1) - layer.bias().at(0, 1), 0.0f);
}

// --- losses ------------------------------------------------------------------

TEST(LossTest, MseLossValueAndGradient) {
  Matrix pred(2, 1), dpred;
  pred.at(0, 0) = 1.0f;
  pred.at(1, 0) = 0.0f;
  double loss = MseLoss(pred, {0.0f, 0.0f}, &dpred);
  EXPECT_NEAR(loss, 0.5, 1e-6);
  EXPECT_NEAR(dpred.at(0, 0), 1.0, 1e-6);  // 2*(1-0)/2
  EXPECT_NEAR(dpred.at(1, 0), 0.0, 1e-6);
}

TEST(LossTest, QErrorLossPerfectPredictionIsOne) {
  Matrix pred(1, 1), dpred;
  pred.at(0, 0) = 0.4f;
  double loss = QErrorLoss(pred, {0.4f}, std::log(1000.0), &dpred);
  EXPECT_NEAR(loss, 1.0, 1e-5);
}

TEST(LossTest, QErrorLossMatchesQError) {
  // log_range chosen so a scaled diff of 0.5 is a q-error of e^(0.5*lr).
  double log_range = std::log(100.0);
  Matrix pred(1, 1), dpred;
  pred.at(0, 0) = 0.75f;
  double loss = QErrorLoss(pred, {0.25f}, log_range, &dpred);
  EXPECT_NEAR(loss, std::exp(0.5 * log_range), 1e-3);
  EXPECT_GT(dpred.at(0, 0), 0.0f);  // overestimate pushes down
}

TEST(LossTest, QErrorGradientIsClipped) {
  Matrix pred(1, 1), dpred;
  pred.at(0, 0) = 1.0f;
  QErrorLoss(pred, {0.0f}, std::log(1e6), &dpred, /*clip=*/10.0);
  EXPECT_LE(std::fabs(dpred.at(0, 0)), 10.0f + 1e-6);
}

TEST(LossTest, SoftmaxRowsSumToOne) {
  Matrix logits(2, 4), probs;
  util::Pcg32 rng(5);
  FillGaussian(&logits, 3.0f, rng);
  Softmax(logits, &probs);
  for (size_t r = 0; r < 2; ++r) {
    float sum = 0;
    for (size_t c = 0; c < 4; ++c) {
      EXPECT_GE(probs.at(r, c), 0.0f);
      sum += probs.at(r, c);
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5);
  }
}

// --- simd::Exp + the vectorized softmax -------------------------------------

// The LMKG-U ConditionalProbs softmax runs on simd::Exp, a polynomial
// approximation — this pins its accuracy contract: <= 1e-6 relative
// error against std::exp across the whole softmax operating range
// (x - max <= 0) and a positive margin, on both the scalar-tail and the
// vector paths of whatever ISA the build resolved.
TEST(SimdExpTest, ScalarPathMatchesStdExpWithinRelativeBound) {
  for (double x = -87.3; x <= 20.0; x += 0.00373) {
    const float fx = static_cast<float>(x);
    const double got = static_cast<double>(simd::ExpScalar(fx));
    const double want = std::exp(static_cast<double>(fx));
    ASSERT_NEAR(got / want, 1.0, 1e-6) << "x=" << fx;
  }
}

TEST(SimdExpTest, VectorPathMatchesStdExpWithinRelativeBound) {
  util::Pcg32 rng(77);
  float in[simd::kLanes], out[simd::kLanes];
  for (int round = 0; round < 4000; ++round) {
    for (size_t lane = 0; lane < simd::kLanes; ++lane)
      in[lane] = static_cast<float>(rng.Uniform(-87.3, 20.0));
    simd::Store(out, simd::Exp(simd::Load(in)));
    for (size_t lane = 0; lane < simd::kLanes; ++lane) {
      const double want = std::exp(static_cast<double>(in[lane]));
      ASSERT_NEAR(static_cast<double>(out[lane]) / want, 1.0, 1e-6)
          << "x=" << in[lane];
    }
  }
}

TEST(SimdExpTest, ExtremeInputsStayFinite) {
  // Clamping keeps the result finite: huge negatives flush toward 0,
  // huge positives saturate below FLT_MAX instead of producing inf.
  EXPECT_LT(simd::ExpScalar(-1000.0f), 1e-37f);
  EXPECT_GE(simd::ExpScalar(-1000.0f), 0.0f);
  EXPECT_TRUE(std::isfinite(simd::ExpScalar(1000.0f)));
  EXPECT_GT(simd::ExpScalar(1000.0f), 1e38f);
}

TEST(LossTest, SoftmaxMatchesDoubleReferenceAcrossLaneBoundaries) {
  // Column counts straddling every lane width the library might resolve
  // (4 / 8 / 16 — this TU's own simd::kLanes can differ from the lmkg
  // library's, see the linkage note in nn/simd.h), so the vector body
  // and the scalar tail are both exercised; rows checked against a
  // double-precision softmax. The per-element bound is the pinned 1e-6
  // exp error plus float normalization rounding.
  util::Pcg32 rng(99);
  const size_t lane_cases[] = {1, 3, 4, 5, 7, 8, 9, 15, 16, 17, 67, 203};
  for (size_t cols : lane_cases) {
    Matrix logits(5, cols), probs;
    FillGaussian(&logits, 3.0f, rng);
    Softmax(logits, &probs);
    for (size_t r = 0; r < logits.rows(); ++r) {
      double max_logit = logits.at(r, 0);
      for (size_t c = 1; c < cols; ++c)
        max_logit = std::max(max_logit,
                             static_cast<double>(logits.at(r, c)));
      double sum = 0.0;
      for (size_t c = 0; c < cols; ++c)
        sum += std::exp(static_cast<double>(logits.at(r, c)) - max_logit);
      for (size_t c = 0; c < cols; ++c) {
        const double want =
            std::exp(static_cast<double>(logits.at(r, c)) - max_logit) /
            sum;
        ASSERT_NEAR(static_cast<double>(probs.at(r, c)) / want, 1.0, 2e-6)
            << "cols=" << cols << " r=" << r << " c=" << c;
      }
    }
  }
}

TEST(LossTest, SoftmaxCrossEntropyGradientChecks) {
  util::Pcg32 rng(6);
  Matrix logits(3, 5);
  FillGaussian(&logits, 1.0f, rng);
  std::vector<uint32_t> targets = {1, 4, 0};
  Matrix dlogits;
  double base = SoftmaxCrossEntropy(logits, targets, &dlogits);
  const double eps = 1e-3;
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 5; ++c) {
      float original = logits.at(r, c);
      logits.at(r, c) = original + static_cast<float>(eps);
      Matrix scratch;
      double plus = SoftmaxCrossEntropy(logits, targets, &scratch);
      logits.at(r, c) = original - static_cast<float>(eps);
      double minus = SoftmaxCrossEntropy(logits, targets, &scratch);
      logits.at(r, c) = original;
      double numeric = (plus - minus) / (2 * eps);
      EXPECT_NEAR(dlogits.at(r, c), numeric, 1e-3);
    }
  }
  EXPECT_GT(base, 0.0);
}

// --- Sequential + gradcheck ------------------------------------------------------

TEST(SequentialTest, MlpGradientsMatchFiniteDifferences) {
  util::Pcg32 rng(7);
  Sequential net;
  net.Add(std::make_unique<Dense>(4, 8, rng));
  net.Add(std::make_unique<Relu>());
  net.Add(std::make_unique<Dense>(8, 1, rng));
  net.Add(std::make_unique<Sigmoid>());

  Matrix x(6, 4);
  FillGaussian(&x, 1.0f, rng);
  std::vector<float> y = {0.1f, 0.9f, 0.4f, 0.6f, 0.2f, 0.8f};
  Matrix dpred;
  auto eval = [&](bool with_grad) {
    const Matrix& pred = net.Forward(x, false);
    double loss = MseLoss(pred, y, &dpred);
    if (with_grad) {
      net.ZeroGrad();
      net.Backward(dpred);
    }
    return loss;
  };
  GradCheckResult result = CheckGradients(eval, net.Params(), 1e-2, 20);
  EXPECT_GT(result.entries_checked, 0u);
  EXPECT_LT(result.max_rel_diff, 0.05) << "abs " << result.max_abs_diff;
}

TEST(SequentialTest, QErrorLossGradientsMatchFiniteDifferences) {
  util::Pcg32 rng(8);
  Sequential net;
  net.Add(std::make_unique<Dense>(3, 6, rng));
  net.Add(std::make_unique<Relu>());
  net.Add(std::make_unique<Dense>(6, 1, rng));
  net.Add(std::make_unique<Sigmoid>());
  Matrix x(4, 3);
  FillGaussian(&x, 1.0f, rng);
  std::vector<float> y = {0.3f, 0.5f, 0.7f, 0.2f};
  Matrix dpred;
  const double log_range = std::log(50.0);
  auto eval = [&](bool with_grad) {
    const Matrix& pred = net.Forward(x, false);
    double loss = QErrorLoss(pred, y, log_range, &dpred, 1e9);
    if (with_grad) {
      net.ZeroGrad();
      net.Backward(dpred);
    }
    return loss;
  };
  GradCheckResult result = CheckGradients(eval, net.Params(), 1e-2, 16);
  EXPECT_LT(result.max_rel_diff, 0.05) << "abs " << result.max_abs_diff;
}

TEST(SequentialTest, InputGradientIsExposed) {
  util::Pcg32 rng(9);
  Sequential net;
  net.Add(std::make_unique<Dense>(2, 1, rng));
  Matrix x(1, 2);
  x.at(0, 0) = 1.0f;
  x.at(0, 1) = 2.0f;
  net.Forward(x, false);
  Matrix dout(1, 1);
  dout.at(0, 0) = 1.0f;
  net.ZeroGrad();
  net.Backward(dout);
  // d out / d x = W.
  auto params = net.Params();
  EXPECT_FLOAT_EQ(net.input_grad().at(0, 0), params[0].value->at(0, 0));
  EXPECT_FLOAT_EQ(net.input_grad().at(0, 1), params[0].value->at(1, 0));
}

TEST(SequentialTest, ParamAccounting) {
  util::Pcg32 rng(10);
  Sequential net;
  net.Add(std::make_unique<Dense>(10, 20, rng));
  net.Add(std::make_unique<Relu>());
  net.Add(std::make_unique<Dense>(20, 1, rng));
  EXPECT_EQ(net.ParamCount(), 10u * 20 + 20 + 20 + 1);
  EXPECT_EQ(net.ParamBytes(), net.ParamCount() * 4);
}

// --- Adam ------------------------------------------------------------------

TEST(AdamTest, ConvergesOnLeastSquares) {
  // Fit y = 2x - 1 with a single Dense layer.
  util::Pcg32 rng(11);
  Sequential net;
  net.Add(std::make_unique<Dense>(1, 1, rng));
  Adam adam(net.Params(), 0.05f);
  Matrix x(16, 1), dpred;
  std::vector<float> y(16);
  for (int i = 0; i < 16; ++i) {
    x.at(i, 0) = static_cast<float>(i) / 8.0f - 1.0f;
    y[i] = 2.0f * x.at(i, 0) - 1.0f;
  }
  double loss = 0;
  for (int step = 0; step < 500; ++step) {
    const Matrix& pred = net.Forward(x, true);
    loss = MseLoss(pred, y, &dpred);
    net.ZeroGrad();
    net.Backward(dpred);
    adam.Step();
  }
  EXPECT_LT(loss, 1e-4);
  EXPECT_EQ(adam.steps(), 500);
}

TEST(AdamTest, ClipGradientNorm) {
  Matrix w(1, 2), g(1, 2);
  g.at(0, 0) = 3.0f;
  g.at(0, 1) = 4.0f;  // norm 5
  std::vector<ParamRef> params = {{&w, &g}};
  double norm = ClipGradientNorm(params, 1.0);
  EXPECT_NEAR(norm, 5.0, 1e-6);
  EXPECT_NEAR(g.at(0, 0), 0.6f, 1e-6);
  EXPECT_NEAR(g.at(0, 1), 0.8f, 1e-6);
  // Below the bound: untouched.
  norm = ClipGradientNorm(params, 10.0);
  EXPECT_NEAR(norm, 1.0, 1e-6);
  EXPECT_NEAR(g.at(0, 0), 0.6f, 1e-6);
}

}  // namespace
}  // namespace lmkg::nn
