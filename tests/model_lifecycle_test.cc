// Model-lifecycle tests: the epoch-tagged result cache (the stale-cache
// bugfix — no estimate computed by a pre-swap model generation may ever
// be served after the swap's epoch bump), hot replica swaps under
// concurrent clients, AdaptiveLmkg versioned snapshots (Save -> Load
// reproduces estimates bit-identically), and the background
// drift->adapt->hot-swap loop of serving::ModelLifecycle. Together with
// serving_test.cc this suite is the target of the TSan CI leg.
#include "serving/model_lifecycle.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include "core/adaptive.h"
#include "core/lmkg_s.h"
#include "encoding/query_encoder.h"
#include "query/fingerprint.h"
#include "sampling/workload.h"
#include "serving/estimator_service.h"
#include "serving/query_cache.h"
#include "test_util.h"
#include "util/check.h"
#include "util/random.h"

namespace lmkg::serving {
namespace {

using lmkg::testing::MakeRandomGraph;
using query::Query;
using query::Topology;

// --- epoch-tagged QueryCache -------------------------------------------------

TEST(EpochCacheTest, StaleEpochEntryMissesAndIsEvicted) {
  QueryCache cache(QueryCacheConfig{64, 1});
  const query::Fingerprint fp{1, 2};
  cache.Insert(fp, /*epoch=*/0, 10.0);
  double value = 0.0;
  ASSERT_TRUE(cache.Lookup(fp, 0, &value));
  EXPECT_DOUBLE_EQ(value, 10.0);
  // Same fingerprint, newer epoch: the pre-swap entry must not hit, and
  // its slot is reclaimed.
  EXPECT_FALSE(cache.Lookup(fp, 1, &value));
  EXPECT_EQ(cache.stale_evictions(), 1u);
  EXPECT_EQ(cache.size(), 0u);
  // The recomputed value hits at the new epoch.
  cache.Insert(fp, 1, 20.0);
  ASSERT_TRUE(cache.Lookup(fp, 1, &value));
  EXPECT_DOUBLE_EQ(value, 20.0);
}

TEST(EpochCacheTest, LateStaleInsertCannotResurrectOldValue) {
  QueryCache cache(QueryCacheConfig{64, 1});
  const query::Fingerprint fp{3, 4};
  cache.Insert(fp, /*epoch=*/1, 20.0);
  // A slow pre-swap computation lands after the swap: tagged epoch 0, it
  // must lose to the resident epoch-1 entry.
  cache.Insert(fp, /*epoch=*/0, 10.0);
  double value = 0.0;
  ASSERT_TRUE(cache.Lookup(fp, 1, &value));
  EXPECT_DOUBLE_EQ(value, 20.0);
}

TEST(EpochCacheTest, SameEpochInsertRefreshes) {
  QueryCache cache(QueryCacheConfig{64, 1});
  const query::Fingerprint fp{5, 6};
  cache.Insert(fp, 2, 1.0);
  cache.Insert(fp, 2, 2.0);
  double value = 0.0;
  ASSERT_TRUE(cache.Lookup(fp, 2, &value));
  EXPECT_DOUBLE_EQ(value, 2.0);
  EXPECT_EQ(cache.size(), 1u);
}

// --- hot swap through EstimatorService ---------------------------------------

constexpr int kMaxQuerySize = 3;

std::vector<Query> MakeServingWorkload(const rdf::Graph& graph,
                                       size_t per_combo, uint64_t seed) {
  sampling::WorkloadGenerator generator(graph);
  std::vector<Query> queries;
  uint64_t combo = 0;
  for (Topology topology : {Topology::kStar, Topology::kChain}) {
    for (int size : {2, kMaxQuerySize}) {
      sampling::WorkloadGenerator::Options options;
      options.topology = topology;
      options.query_size = size;
      options.count = per_combo;
      options.seed = seed + 31 * combo++;
      for (auto& lq : generator.Generate(options))
        queries.push_back(std::move(lq.query));
    }
  }
  return queries;
}

// Two generations of the "same" deployment: model A and model B share
// the architecture but are trained with different seeds, so they give
// different estimates for (at least some of) the workload — the
// precondition for observing a stale cache value at all.
class HotSwapTest : public ::testing::Test {
 protected:
  HotSwapTest() : graph_(MakeRandomGraph(60, 6, 700, 11)) {
    sampling::WorkloadGenerator generator(graph_);
    std::vector<sampling::LabeledQuery> train;
    uint64_t combo = 0;
    for (Topology topology : {Topology::kStar, Topology::kChain}) {
      for (int size : {2, kMaxQuerySize}) {
        sampling::WorkloadGenerator::Options options;
        options.topology = topology;
        options.query_size = size;
        options.count = 40;
        options.seed = 1000 + 31 * combo++;
        auto labeled = generator.Generate(options);
        train.insert(train.end(), labeled.begin(), labeled.end());
      }
    }
    blob_a_ = TrainBlob(train, /*seed=*/7);
    blob_b_ = TrainBlob(train, /*seed=*/8);

    workload_ = MakeServingWorkload(graph_, 20, 5);
    auto model_a = LoadModel(blob_a_, 7);
    auto model_b = LoadModel(blob_b_, 8);
    expected_a_.reserve(workload_.size());
    expected_b_.reserve(workload_.size());
    bool any_difference = false;
    for (const Query& q : workload_) {
      expected_a_.push_back(model_a->EstimateCardinality(q));
      expected_b_.push_back(model_b->EstimateCardinality(q));
      any_difference |= expected_a_.back() != expected_b_.back();
    }
    // Without at least one differing estimate a stale cache value would
    // be indistinguishable from a fresh one and the swap tests vacuous.
    LMKG_CHECK(any_difference);
  }

  core::LmkgSConfig ModelConfig(uint64_t seed) {
    core::LmkgSConfig config;
    config.hidden_dim = 16;
    config.epochs = 2;
    config.dropout = 0.0;
    config.seed = seed;
    return config;
  }

  std::string TrainBlob(const std::vector<sampling::LabeledQuery>& train,
                        uint64_t seed) {
    core::LmkgS model(NewEncoder(), ModelConfig(seed));
    model.Train(train);
    std::ostringstream blob;
    LMKG_CHECK(model.Save(blob).ok());
    return blob.str();
  }

  std::unique_ptr<encoding::QueryEncoder> NewEncoder() {
    return encoding::MakeSgEncoder(graph_, kMaxQuerySize + 1,
                                   kMaxQuerySize,
                                   encoding::TermEncoding::kBinary);
  }

  std::unique_ptr<core::LmkgS> LoadModel(const std::string& blob,
                                         uint64_t seed) {
    auto model =
        std::make_unique<core::LmkgS>(NewEncoder(), ModelConfig(seed));
    std::istringstream in(blob);
    EXPECT_TRUE(model->Load(in).ok());
    return model;
  }

  std::vector<std::unique_ptr<core::CardinalityEstimator>> Replicas(
      const std::string& blob, uint64_t seed, size_t n) {
    std::vector<std::unique_ptr<core::CardinalityEstimator>> replicas;
    for (size_t i = 0; i < n; ++i)
      replicas.push_back(LoadModel(blob, seed));
    return replicas;
  }

  // All clients submit the whole workload in their own shuffled order;
  // returns per-client results indexed like workload_.
  std::vector<std::vector<double>> RunClients(EstimatorService* service,
                                              size_t clients,
                                              uint64_t seed) {
    std::vector<std::vector<double>> results(
        clients, std::vector<double>(workload_.size(), 0.0));
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        std::vector<size_t> order(workload_.size());
        for (size_t i = 0; i < order.size(); ++i) order[i] = i;
        util::Pcg32 rng(seed + c);
        rng.Shuffle(&order);
        for (size_t i : order)
          results[c][i] = service->Estimate(workload_[i]);
      });
    }
    for (auto& t : threads) t.join();
    return results;
  }

  rdf::Graph graph_;
  std::string blob_a_;
  std::string blob_b_;
  std::vector<Query> workload_;
  std::vector<double> expected_a_;
  std::vector<double> expected_b_;
};

// The headline bugfix pin: 8 concurrent clients fill the cache against
// model A; the replicas are hot-swapped to model B and the epoch bumped;
// 8 concurrent clients then re-submit the same workload (every entry
// still resident in the cache). Every single post-epoch response must be
// bit-identical to a serial run on model B — i.e. zero pre-swap cache
// values survive the swap.
TEST_F(HotSwapTest, MidStreamSwapServesZeroStaleCacheValues) {
  ServiceConfig config;
  config.max_batch_size = 16;
  config.max_queue_delay_us = 100;
  config.cache_capacity = 4096;  // whole workload stays resident
  EstimatorService service(Replicas(blob_a_, 7, 2), config);

  constexpr size_t kClients = 8;
  auto phase1 = RunClients(&service, kClients, 900);
  for (size_t c = 0; c < kClients; ++c)
    for (size_t i = 0; i < workload_.size(); ++i)
      EXPECT_DOUBLE_EQ(phase1[c][i], expected_a_[i])
          << "client " << c << " query " << i << " (phase 1)";
  EXPECT_GT(service.Stats().cache_hits, 0u);

  // Hot-swap: every replica first, then ONE epoch bump.
  for (size_t r = 0; r < service.num_replicas(); ++r) {
    auto old_model = service.ReplaceReplica(r, LoadModel(blob_b_, 8));
    EXPECT_NE(old_model, nullptr);
  }
  service.AdvanceEpoch();
  EXPECT_EQ(service.epoch(), 1u);

  auto phase2 = RunClients(&service, kClients, 1700);
  for (size_t c = 0; c < kClients; ++c)
    for (size_t i = 0; i < workload_.size(); ++i)
      EXPECT_DOUBLE_EQ(phase2[c][i], expected_b_[i])
          << "client " << c << " query " << i << " (phase 2)";

  const ServingStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.model_epoch, 1u);
  // Phase 2 touched the phase-1 entries: each contact evicted one.
  EXPECT_GT(stats.cache_stale_evictions, 0u);
}

// Swaps racing the clients: every response must be model A's or model
// B's estimate for that query — a stale cache value would instead leak
// an A estimate arbitrarily long after the last swap to B, which the
// final quiesced pass catches.
TEST_F(HotSwapTest, SwapsRacingClientsNeverMixGenerations) {
  ServiceConfig config;
  config.max_batch_size = 16;
  config.cache_capacity = 4096;
  EstimatorService service(Replicas(blob_a_, 7, 2), config);

  constexpr size_t kClients = 4;
  constexpr int kRounds = 6;
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      util::Pcg32 rng(4200 + c);
      std::vector<size_t> order(workload_.size());
      for (size_t i = 0; i < order.size(); ++i) order[i] = i;
      for (int round = 0; round < kRounds; ++round) {
        rng.Shuffle(&order);
        for (size_t i : order) {
          const double got = service.Estimate(workload_[i]);
          EXPECT_TRUE(got == expected_a_[i] || got == expected_b_[i])
              << "client " << c << " query " << i << " got " << got;
        }
      }
    });
  }
  // Swap A -> B -> A -> B while the clients hammer the service.
  const std::string* blobs[] = {&blob_b_, &blob_a_, &blob_b_};
  const uint64_t seeds[] = {8, 7, 8};
  for (int swap = 0; swap < 3; ++swap) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    for (size_t r = 0; r < service.num_replicas(); ++r)
      service.ReplaceReplica(r, LoadModel(*blobs[swap], seeds[swap]));
    service.AdvanceEpoch();
  }
  for (auto& t : clients) t.join();

  // Quiesced on generation B: a fresh pass must be pure B.
  for (size_t i = 0; i < workload_.size(); ++i)
    EXPECT_DOUBLE_EQ(service.Estimate(workload_[i]), expected_b_[i]);
  EXPECT_EQ(service.epoch(), 3u);
}

// --- AdaptiveLmkg versioned snapshots ----------------------------------------

class SnapshotTest : public ::testing::Test {
 protected:
  SnapshotTest() : graph_(MakeRandomGraph(40, 5, 400, 23)) {}

  core::AdaptiveLmkgConfig SmallConfig() {
    core::AdaptiveLmkgConfig config;
    config.s_config.hidden_dim = 32;
    config.s_config.epochs = 8;
    config.s_config.dropout = 0.0;
    config.train_queries = 120;
    config.initial_combos = {{Topology::kStar, 2}};
    config.monitor.min_observations = 20;
    config.monitor.decay = 0.9;
    config.seed = 3;
    return config;
  }

  std::vector<Query> Workload(Topology topology, int size, size_t count,
                              uint64_t seed) {
    sampling::WorkloadGenerator generator(graph_);
    sampling::WorkloadGenerator::Options options;
    options.topology = topology;
    options.query_size = size;
    options.count = count;
    options.seed = seed;
    std::vector<Query> queries;
    for (auto& lq : generator.Generate(options))
      queries.push_back(std::move(lq.query));
    return queries;
  }

  rdf::Graph graph_;
};

TEST_F(SnapshotTest, SaveLoadReproducesEstimatesExactly) {
  core::AdaptiveLmkg original(graph_, SmallConfig());
  // Shift the workload so Adapt grows the registry beyond the initial
  // combo — the snapshot must carry the full replica set.
  auto chains = Workload(Topology::kChain, 3, 40, 9);
  ASSERT_GE(chains.size(), 25u);
  for (const Query& q : chains) original.EstimateCardinality(q);
  auto report = original.Adapt();
  ASSERT_EQ(report.created.size(), 1u);
  ASSERT_EQ(original.num_models(), 2u);

  std::ostringstream blob;
  ASSERT_TRUE(original.Save(blob).ok());

  core::AdaptiveLmkgConfig target_config = SmallConfig();
  target_config.initial_combos.clear();  // the snapshot carries the models
  core::AdaptiveLmkg loaded(graph_, target_config);
  ASSERT_EQ(loaded.num_models(), 0u);
  std::istringstream in(blob.str());
  ASSERT_TRUE(loaded.Load(in).ok());

  EXPECT_EQ(loaded.num_models(), original.num_models());
  EXPECT_TRUE(loaded.Covers({Topology::kStar, 2}));
  EXPECT_TRUE(loaded.Covers({Topology::kChain, 3}));
  // Monitor state travels too: drift detection resumes where the donor
  // left off.
  EXPECT_EQ(loaded.monitor().observations(),
            original.monitor().observations());
  EXPECT_DOUBLE_EQ(loaded.monitor().total_weight(),
                   original.monitor().total_weight());

  // Bit-identical estimates across every dispatch path: model-served
  // star-2 and chain-3, exact single-pattern, independence fallback.
  std::vector<Query> probes;
  for (auto& q : Workload(Topology::kStar, 2, 10, 31)) probes.push_back(q);
  for (auto& q : Workload(Topology::kChain, 3, 10, 37)) probes.push_back(q);
  for (auto& q : Workload(Topology::kStar, 1, 5, 41)) probes.push_back(q);
  for (auto& q : Workload(Topology::kChain, 4, 5, 43)) probes.push_back(q);
  ASSERT_GT(probes.size(), 20u);
  for (const Query& q : probes)
    EXPECT_DOUBLE_EQ(loaded.EstimateCardinality(q),
                     original.EstimateCardinality(q));
}

TEST_F(SnapshotTest, LoadRejectsMismatchedConfig) {
  core::AdaptiveLmkg original(graph_, SmallConfig());
  std::ostringstream blob;
  ASSERT_TRUE(original.Save(blob).ok());

  core::AdaptiveLmkgConfig wrong = SmallConfig();
  wrong.initial_combos.clear();
  wrong.s_config.hidden_dim = 64;  // architecture mismatch
  core::AdaptiveLmkg target(graph_, wrong);
  std::istringstream in(blob.str());
  EXPECT_FALSE(target.Load(in).ok());
  EXPECT_EQ(target.num_models(), 0u);  // failed load leaves it untouched
}

TEST_F(SnapshotTest, LoadRejectsGarbageAndTruncation) {
  core::AdaptiveLmkgConfig config = SmallConfig();
  config.initial_combos.clear();
  core::AdaptiveLmkg target(graph_, config);

  std::istringstream garbage("definitely not a snapshot");
  EXPECT_FALSE(target.Load(garbage).ok());

  core::AdaptiveLmkg original(graph_, SmallConfig());
  std::ostringstream blob;
  ASSERT_TRUE(original.Save(blob).ok());
  const std::string full = blob.str();
  std::istringstream truncated(full.substr(0, full.size() / 2));
  EXPECT_FALSE(target.Load(truncated).ok());
  EXPECT_EQ(target.num_models(), 0u);
}

// --- ModelLifecycle: drift -> adapt -> hot-swap ------------------------------

class ModelLifecycleTest : public SnapshotTest {
 protected:
  // One serving replica rehydrated from an AdaptiveLmkg snapshot blob.
  ModelLifecycle::ReplicaFactory Factory() {
    return MakeAdaptiveReplicaFactory(graph_, SmallConfig());
  }

  std::vector<std::unique_ptr<core::CardinalityEstimator>>
  ReplicasFromShadow(core::AdaptiveLmkg* shadow, size_t n) {
    std::ostringstream blob;
    LMKG_CHECK(shadow->Save(blob).ok());
    auto factory = Factory();
    std::vector<std::unique_ptr<core::CardinalityEstimator>> replicas;
    for (size_t i = 0; i < n; ++i) replicas.push_back(factory(blob.str()));
    return replicas;
  }
};

TEST_F(ModelLifecycleTest, DetectsDriftTrainsOffPathAndHotSwaps) {
  core::AdaptiveLmkg shadow(graph_, SmallConfig());

  ServiceConfig service_config;
  service_config.max_batch_size = 16;
  service_config.cache_capacity = 1024;
  service_config.workload_tap_capacity = 256;
  EstimatorService service(ReplicasFromShadow(&shadow, 2), service_config);

  ModelLifecycleConfig lifecycle_config;
  lifecycle_config.background = false;  // drive cycles manually
  lifecycle_config.min_samples_per_cycle = 1;
  ModelLifecycle lifecycle(&service, &shadow, Factory(), lifecycle_config);

  // The workload shifts to chain-3 — a combo the shadow does not cover.
  auto chains = Workload(Topology::kChain, 3, 40, 9);
  ASSERT_GE(chains.size(), 25u);
  for (const Query& q : chains) (void)service.Estimate(q);

  LifecycleReport report = lifecycle.RunOnce();
  EXPECT_GT(report.samples_observed, 0u);
  ASSERT_EQ(report.adapt.created.size(), 1u);
  EXPECT_EQ(report.adapt.created[0].topology, Topology::kChain);
  EXPECT_EQ(report.adapt.created[0].size, 3);
  EXPECT_TRUE(report.swapped);
  EXPECT_EQ(report.epoch, 1u);
  EXPECT_EQ(service.epoch(), 1u);
  EXPECT_EQ(lifecycle.swaps(), 1u);

  // The swapped-in replicas are rehydrations of the adapted shadow:
  // every post-swap response must equal a serial reference built from
  // the same snapshot, bit for bit — including the chain-3 queries now
  // served by the new specialized model.
  std::ostringstream blob;
  ASSERT_TRUE(shadow.Save(blob).ok());
  auto reference = Factory()(blob.str());
  ASSERT_TRUE(static_cast<core::AdaptiveLmkg*>(reference.get())
                  ->Covers({Topology::kChain, 3}));
  for (const Query& q : chains)
    EXPECT_DOUBLE_EQ(service.Estimate(q),
                     reference->EstimateCardinality(q));

  // A steady workload does not churn models or epochs.
  for (const Query& q : chains) (void)service.Estimate(q);
  LifecycleReport steady = lifecycle.RunOnce();
  EXPECT_TRUE(steady.adapt.created.empty());
  EXPECT_TRUE(steady.adapt.dropped.empty());
  EXPECT_FALSE(steady.swapped);
  EXPECT_EQ(service.epoch(), 1u);
}

TEST_F(ModelLifecycleTest, BackgroundThreadSwapsUnderLiveTraffic) {
  core::AdaptiveLmkg shadow(graph_, SmallConfig());

  ServiceConfig service_config;
  service_config.max_batch_size = 16;
  service_config.cache_capacity = 1024;
  service_config.workload_tap_capacity = 256;
  EstimatorService service(ReplicasFromShadow(&shadow, 2), service_config);

  ModelLifecycleConfig lifecycle_config;
  lifecycle_config.background = true;
  lifecycle_config.poll_interval = std::chrono::milliseconds(10);
  lifecycle_config.min_samples_per_cycle = 16;
  ModelLifecycle lifecycle(&service, &shadow, Factory(), lifecycle_config);

  // Concurrent clients sustain the shifted workload until the background
  // thread notices, trains off-path, and swaps.
  auto chains = Workload(Topology::kChain, 3, 30, 9);
  ASSERT_GE(chains.size(), 20u);
  std::atomic<bool> stop{false};
  std::vector<std::thread> clients;
  for (size_t c = 0; c < 2; ++c) {
    clients.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed))
        for (const Query& q : chains) (void)service.Estimate(q);
    });
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (lifecycle.swaps() == 0 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : clients) t.join();
  lifecycle.Stop();

  ASSERT_GE(lifecycle.swaps(), 1u);
  EXPECT_GE(service.epoch(), 1u);
  EXPECT_TRUE(shadow.Covers({Topology::kChain, 3}));
  // Quiesced: the service now answers from replicas equal to the
  // adapted shadow's snapshot.
  std::ostringstream blob;
  ASSERT_TRUE(shadow.Save(blob).ok());
  auto reference = Factory()(blob.str());
  for (const Query& q : chains)
    EXPECT_DOUBLE_EQ(service.Estimate(q),
                     reference->EstimateCardinality(q));
}

TEST_F(ModelLifecycleTest, ConcurrentStopCallsAreSafeAndIdempotent) {
  core::AdaptiveLmkg shadow(graph_, SmallConfig());
  ServiceConfig service_config;
  service_config.workload_tap_capacity = 64;
  EstimatorService service(ReplicasFromShadow(&shadow, 1), service_config);

  ModelLifecycleConfig lifecycle_config;
  lifecycle_config.background = true;
  lifecycle_config.poll_interval = std::chrono::milliseconds(2);
  ModelLifecycle lifecycle(&service, &shadow, Factory(), lifecycle_config);

  // Regression (found by the thread-safety annotation pass): Stop() is
  // documented idempotent, but concurrent callers used to race straight
  // to thread_.join() — and joining the same std::thread from two
  // threads at once is undefined behavior (both can pass joinable()
  // before either join returns). Stop now serializes the join on its
  // own mutex; this hammers the old race, under TSan on the CI leg.
  std::vector<std::thread> stoppers;
  for (int i = 0; i < 4; ++i)
    stoppers.emplace_back([&] { lifecycle.Stop(); });
  lifecycle.Stop();
  for (auto& t : stoppers) t.join();
  // Still callable afterwards (idempotent), and the destructor's own
  // Stop must also be a no-op.
  lifecycle.Stop();
}

}  // namespace
}  // namespace lmkg::serving
