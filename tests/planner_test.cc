// Unit tests for the DP join enumerator. The contracts under test:
//   * optimality: DP left-deep equals an exhaustive left-deep reference
//     on small BGPs, and bushy never costs more than left-deep;
//   * determinism: memo on/off and batched/serial pricing choose
//     bit-identical plans with a deterministic source;
//   * structure: every emitted tree partitions the query's patterns;
//   * fallbacks: greedy above dp_max_patterns, cross-product bridging
//     for disconnected BGPs.
#include "planner/planner.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <vector>

#include "baselines/independence.h"
#include "query/fingerprint.h"
#include "query/query.h"
#include "test_util.h"

namespace lmkg::planner {
namespace {

using query::PatternTerm;
using query::Query;
using query::TriplePattern;

// Deterministic synthetic source: the cardinality of a sub-BGP is a pure
// function of its canonical fingerprint, so isomorphic materializations
// agree, repeated calls agree, and costs are varied enough to make join
// orders genuinely differ.
class HashSource : public CardinalitySource {
 public:
  double EstimateOne(const Query& q) override {
    ++calls;
    const query::Fingerprint fp = query::ComputeFingerprint(q, &scratch_);
    return static_cast<double>(fp.lo % 99991);
  }
  size_t calls = 0;

 private:
  query::FingerprintScratch scratch_;
};

Query Star(int arity) {
  std::vector<std::pair<PatternTerm, PatternTerm>> pairs;
  for (int i = 0; i < arity; ++i)
    pairs.push_back({PatternTerm::Bound(static_cast<rdf::TermId>(10 + i)),
                     PatternTerm::Variable(1 + i)});
  return query::MakeStarQuery(PatternTerm::Variable(0), pairs);
}

Query Chain(int length) {
  std::vector<PatternTerm> nodes;
  std::vector<PatternTerm> predicates;
  for (int i = 0; i <= length; ++i) nodes.push_back(PatternTerm::Variable(i));
  for (int i = 0; i < length; ++i)
    predicates.push_back(PatternTerm::Bound(static_cast<rdf::TermId>(20 + i)));
  return query::MakeChainQuery(nodes, predicates);
}

// var 0 --p--> var 1 --p--> var 2, plus var 1 --p--> var 3: a branching
// composite (neither star nor chain).
Query Branching() {
  Query q;
  q.patterns.push_back({PatternTerm::Variable(0), PatternTerm::Bound(31),
                        PatternTerm::Variable(1)});
  q.patterns.push_back({PatternTerm::Variable(1), PatternTerm::Bound(32),
                        PatternTerm::Variable(2)});
  q.patterns.push_back({PatternTerm::Variable(1), PatternTerm::Bound(33),
                        PatternTerm::Variable(3)});
  q.patterns.push_back({PatternTerm::Variable(2), PatternTerm::Bound(34),
                        PatternTerm::Variable(4)});
  q.num_vars = 5;
  return q;
}

std::vector<Query> TestQueries() {
  return {Star(2), Star(3), Star(5), Chain(2), Chain(3), Chain(5),
          Branching()};
}

// Checks that the tree under `index` is a partition of exactly `mask`.
void CheckSubtree(const Plan& plan, int index, uint64_t mask) {
  const PlanNode& node = plan.nodes[index];
  EXPECT_EQ(node.mask, mask);
  if (node.pattern >= 0) {
    EXPECT_EQ(mask, uint64_t{1} << node.pattern);
    EXPECT_EQ(node.left, -1);
    EXPECT_EQ(node.right, -1);
    return;
  }
  ASSERT_GE(node.left, 0);
  ASSERT_GE(node.right, 0);
  const uint64_t left = plan.nodes[node.left].mask;
  const uint64_t right = plan.nodes[node.right].mask;
  EXPECT_EQ(left & right, 0u) << "overlapping children";
  EXPECT_EQ(left | right, mask) << "children do not cover the node";
  CheckSubtree(plan, node.left, left);
  CheckSubtree(plan, node.right, right);
}

void CheckValid(const Plan& plan, size_t num_patterns) {
  ASSERT_TRUE(plan.valid());
  const uint64_t full = num_patterns == 64
                            ? ~uint64_t{0}
                            : (uint64_t{1} << num_patterns) - 1;
  CheckSubtree(plan, plan.root, full);
}

// Exhaustive left-deep reference: minimum over all pattern permutations
// whose every prefix is connected of sum_{k>=2} card(prefix). Uses the
// same source and the same adjacency notion as the planner.
double ExhaustiveLeftDeep(const Query& q, CardinalitySource* source) {
  const int n = static_cast<int>(q.patterns.size());
  std::vector<int> perm(n);
  for (int i = 0; i < n; ++i) perm[i] = i;
  std::vector<int> var_map;
  Query sub;
  double best = std::numeric_limits<double>::infinity();
  do {
    double cost = 0.0;
    uint64_t mask = uint64_t{1} << perm[0];
    bool connected = true;
    for (int k = 1; k < n; ++k) {
      // The next pattern must join the prefix: materialize the prefix
      // WITH it and check the planner's notion via variable/bound-node
      // sharing — reuse MaterializeSubquery + a shared-term scan.
      const Query& next = q;
      bool joins = false;
      for (uint64_t rest = mask; rest != 0 && !joins; rest &= rest - 1) {
        const int i = std::countr_zero(rest);
        const auto& a = next.patterns[i];
        const auto& b = next.patterns[perm[k]];
        auto nj = [](const PatternTerm& x, const PatternTerm& y) {
          if (x.is_var() && y.is_var()) return x.var == y.var;
          if (x.bound() && y.bound()) return x.value == y.value;
          return false;
        };
        joins = nj(a.s, b.s) || nj(a.s, b.o) || nj(a.o, b.s) ||
                nj(a.o, b.o) ||
                (a.p.is_var() && b.p.is_var() && a.p.var == b.p.var);
      }
      if (!joins) {
        connected = false;
        break;
      }
      mask |= uint64_t{1} << perm[k];
      MaterializeSubquery(q, mask, &var_map, &sub);
      cost += source->EstimateOne(sub);
    }
    if (connected) best = std::min(best, cost);
  } while (std::next_permutation(perm.begin(), perm.end()));
  return best;
}

TEST(PlannerTest, LeftDeepDpMatchesExhaustiveReference) {
  for (const Query& q : TestQueries()) {
    HashSource source;
    PlannerConfig config;
    config.bushy = false;
    JoinPlanner planner(&source, config);
    const Plan& plan = planner.PlanQuery(q);
    CheckValid(plan, q.patterns.size());
    EXPECT_FALSE(plan.used_greedy);
    HashSource reference;
    EXPECT_DOUBLE_EQ(plan.cost, ExhaustiveLeftDeep(q, &reference))
        << query::QueryToString(q);
  }
}

TEST(PlannerTest, BushyNeverCostsMoreThanLeftDeep) {
  for (const Query& q : TestQueries()) {
    HashSource source;
    PlannerConfig bushy;
    bushy.bushy = true;
    PlannerConfig left_deep;
    left_deep.bushy = false;
    JoinPlanner bushy_planner(&source, bushy);
    JoinPlanner ld_planner(&source, left_deep);
    const double bushy_cost = bushy_planner.PlanQuery(q).cost;
    const double ld_cost = ld_planner.PlanQuery(q).cost;
    EXPECT_LE(bushy_cost, ld_cost) << query::QueryToString(q);
  }
}

TEST(PlannerTest, MemoOnAndOffChooseIdenticalPlans) {
  for (const Query& q : TestQueries()) {
    HashSource source;
    PlannerConfig with_memo;
    with_memo.use_memo = true;
    PlannerConfig without_memo;
    without_memo.use_memo = false;
    JoinPlanner memo_planner(&source, with_memo);
    JoinPlanner plain_planner(&source, without_memo);
    // Two memoized rounds: the second is served fully from the memo and
    // must still equal the unmemoized plan bit for bit.
    memo_planner.PlanQuery(q);
    const Plan& memoized = memo_planner.PlanQuery(q);
    EXPECT_EQ(memoized.subplans_priced, 0u);
    EXPECT_EQ(memoized.memo_hits, memoized.subplans_considered);
    const Plan& plain = plain_planner.PlanQuery(q);
    ASSERT_EQ(memoized.nodes.size(), plain.nodes.size());
    EXPECT_EQ(memoized.cost, plain.cost);  // bitwise, not approximate
    for (size_t i = 0; i < memoized.nodes.size(); ++i) {
      EXPECT_EQ(memoized.nodes[i].mask, plain.nodes[i].mask);
      EXPECT_EQ(memoized.nodes[i].cardinality, plain.nodes[i].cardinality);
    }
  }
}

TEST(PlannerTest, BatchedAndSerialPricingChooseIdenticalPlans) {
  // DirectSource over IndependenceEstimator: its batch entry point is
  // the serial loop, so any divergence would come from the planner's own
  // batched pipeline — which must not reorder or drop results.
  auto graph = lmkg::testing::MakeRandomGraph(60, 6, 700, 11);
  baselines::IndependenceEstimator independence(graph);
  for (const Query& q : TestQueries()) {
    DirectSource source(&independence);
    PlannerConfig batched;
    batched.batched_pricing = true;
    batched.max_pricing_batch = 3;  // force multiple chunks
    PlannerConfig serial;
    serial.batched_pricing = false;
    JoinPlanner batched_planner(&source, batched);
    JoinPlanner serial_planner(&source, serial);
    const Plan& a = batched_planner.PlanQuery(q);
    const double a_cost = a.cost;
    std::vector<PlanNode> a_nodes = a.nodes;
    const Plan& b = serial_planner.PlanQuery(q);
    EXPECT_EQ(a_cost, b.cost) << query::QueryToString(q);
    ASSERT_EQ(a_nodes.size(), b.nodes.size());
    for (size_t i = 0; i < a_nodes.size(); ++i) {
      EXPECT_EQ(a_nodes[i].mask, b.nodes[i].mask);
      EXPECT_EQ(a_nodes[i].cardinality, b.nodes[i].cardinality);
    }
  }
}

TEST(PlannerTest, GreedyFallbackAboveThreshold) {
  HashSource source;
  PlannerConfig config;
  config.dp_max_patterns = 3;
  JoinPlanner planner(&source, config);
  const Query q = Chain(5);  // 5 patterns > 3
  const Plan& plan = planner.PlanQuery(q);
  CheckValid(plan, q.patterns.size());
  EXPECT_TRUE(plan.used_greedy);
  EXPECT_GT(plan.subplans_priced, 0u);
  // Greedy left-deep: every internal node has a leaf right child.
  for (const PlanNode& node : plan.nodes) {
    if (node.pattern < 0) {
      EXPECT_GE(plan.nodes[node.right].pattern, 0);
    }
  }
}

TEST(PlannerTest, DisconnectedQueryBridgesComponents) {
  // Two 2-stars over disjoint variables: no join connects them, so the
  // plan must contain exactly one cross-product bridge whose cardinality
  // is the product of the component cardinalities.
  Query q;
  q.patterns.push_back({PatternTerm::Variable(0), PatternTerm::Bound(1),
                        PatternTerm::Variable(1)});
  q.patterns.push_back({PatternTerm::Variable(0), PatternTerm::Bound(2),
                        PatternTerm::Variable(2)});
  q.patterns.push_back({PatternTerm::Variable(3), PatternTerm::Bound(3),
                        PatternTerm::Variable(4)});
  q.patterns.push_back({PatternTerm::Variable(3), PatternTerm::Bound(4),
                        PatternTerm::Variable(5)});
  q.num_vars = 6;
  HashSource source;
  JoinPlanner planner(&source);
  const Plan& plan = planner.PlanQuery(q);
  CheckValid(plan, q.patterns.size());
  const PlanNode& root = plan.nodes[plan.root];
  EXPECT_EQ(root.mask, 0b1111u);
  const double left = plan.nodes[root.left].cardinality;
  const double right = plan.nodes[root.right].cardinality;
  EXPECT_DOUBLE_EQ(root.cardinality, left * right);
}

TEST(PlannerTest, SinglePatternPlansToALeaf) {
  HashSource source;
  JoinPlanner planner(&source);
  const Plan& plan = planner.PlanQuery(Star(1));
  CheckValid(plan, 1);
  EXPECT_EQ(plan.cost, 0.0);  // no internal nodes: nothing to decide
  EXPECT_EQ(plan.subplans_priced, 0u);
}

TEST(PlannerTest, MemoPersistsAcrossQueriesAndClears) {
  // A 3-star's lattice is a sub-lattice of the 5-star over the same
  // predicates, so planning the 5-star after the 3-star hits the memo
  // for the shared cells; ClearMemo forgets everything.
  HashSource source;
  JoinPlanner planner(&source);
  planner.PlanQuery(Star(3));
  const size_t calls_after_small = source.calls;
  const Plan& big = planner.PlanQuery(Star(5));
  EXPECT_GT(big.memo_hits, 0u);
  EXPECT_GT(source.calls, calls_after_small);
  planner.ClearMemo();
  const Plan& again = planner.PlanQuery(Star(5));
  EXPECT_EQ(again.memo_hits, 0u);
  EXPECT_EQ(again.subplans_priced, again.subplans_considered);
}

TEST(PlannerTest, PlanTrueCostSumsInternalNodesOnly) {
  HashSource source;
  JoinPlanner planner(&source);
  const Query q = Chain(3);
  const Plan& plan = planner.PlanQuery(q);
  HashSource oracle;
  const double true_cost = PlanTrueCost(q, plan, &oracle);
  // HashSource is deterministic, so the "true" cost under it equals the
  // plan's own cost — the wiring check, not a semantic one.
  EXPECT_DOUBLE_EQ(true_cost, plan.cost);
}

TEST(PlannerTest, PlanToStringRendersEveryLeaf) {
  HashSource source;
  JoinPlanner planner(&source);
  const Plan& plan = planner.PlanQuery(Chain(3));
  const std::string rendered = PlanToString(plan);
  for (const char* leaf : {"p0", "p1", "p2"})
    EXPECT_NE(rendered.find(leaf), std::string::npos) << rendered;
}

TEST(PlanMemoTest, InsertLookupClearAndGrowth) {
  PlanMemo memo(16);
  std::vector<query::Fingerprint> fps;
  for (uint64_t i = 0; i < 200; ++i)
    fps.push_back(query::Fingerprint{i * 0x9e3779b97f4a7c15ull, i + 1});
  for (size_t i = 0; i < fps.size(); ++i)
    memo.Insert(fps[i], static_cast<double>(i));
  EXPECT_EQ(memo.size(), fps.size());
  double value = -1.0;
  for (size_t i = 0; i < fps.size(); ++i) {
    ASSERT_TRUE(memo.Lookup(fps[i], &value));
    EXPECT_EQ(value, static_cast<double>(i));
  }
  EXPECT_FALSE(memo.Lookup(query::Fingerprint{123, 456}, &value));
  memo.Clear();
  EXPECT_EQ(memo.size(), 0u);
  for (const auto& fp : fps) EXPECT_FALSE(memo.Lookup(fp, &value));
  memo.Insert(fps[0], 7.0);  // reusable after clear
  ASSERT_TRUE(memo.Lookup(fps[0], &value));
  EXPECT_EQ(value, 7.0);
}

}  // namespace
}  // namespace lmkg::planner
