// Model-store tests: the durable segment/manifest format (Commit is the
// single visibility point; corruption, truncation, version and arch
// mismatches are rejected leaving the caller untouched), zero-copy
// round-trips (a replica attached from the mmapped store estimates
// bit-identically to the donor AND to a streamed-snapshot replica), the
// StoreCache LRU pager (eviction under a byte budget, fault-back-in with
// identical bytes), lifecycle persistence of hot swaps, and a concurrent
// map/commit-vs-estimate stress — the suite carries the `threaded` CTest
// label for the TSan leg.
#include "store/model_store.h"

#include <dirent.h>
#include <fcntl.h>
#include <gtest/gtest.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdint>
#include <fstream>
#include <memory>
#include <numeric>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/adaptive.h"
#include "query/query.h"
#include "sampling/workload.h"
#include "serving/estimator_service.h"
#include "serving/model_lifecycle.h"
#include "store/replica_attach.h"
#include "store/store_cache.h"
#include "test_util.h"
#include "util/check.h"

namespace lmkg::store {
namespace {

using lmkg::testing::MakeRandomGraph;
using query::Query;
using query::Topology;
using Combo = core::WorkloadMonitor::Combo;

// --- filesystem helpers ------------------------------------------------------

std::string MakeTempDir() {
  char tmpl[] = "/tmp/lmkg_store_XXXXXX";
  const char* dir = ::mkdtemp(tmpl);
  LMKG_CHECK(dir != nullptr);
  return dir;
}

void RemoveTree(const std::string& dir) {
  if (DIR* d = ::opendir(dir.c_str())) {
    while (dirent* e = ::readdir(d)) {
      const std::string name = e->d_name;
      if (name == "." || name == "..") continue;
      ::unlink((dir + "/" + name).c_str());
    }
    ::closedir(d);
  }
  ::rmdir(dir.c_str());
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  LMKG_CHECK(in.good()) << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void WriteAll(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  LMKG_CHECK(out.good()) << path;
  out.write(contents.data(),
            static_cast<std::streamsize>(contents.size()));
  LMKG_CHECK(out.good());
}

bool FileExists(const std::string& path) {
  return ::access(path.c_str(), F_OK) == 0;
}

// --- fixture -----------------------------------------------------------------

class StoreTest : public ::testing::Test {
 protected:
  StoreTest() : graph_(MakeRandomGraph(60, 6, 700, 11)) {}

  void SetUp() override { dir_ = MakeTempDir(); }
  void TearDown() override { RemoveTree(dir_); }

  core::AdaptiveLmkgConfig SmallConfig() {
    core::AdaptiveLmkgConfig config;
    config.s_config.hidden_dim = 16;
    config.s_config.epochs = 2;
    config.s_config.dropout = 0.0;
    config.train_queries = 60;
    config.initial_combos = {{Topology::kStar, 2}, {Topology::kChain, 2}};
    config.monitor.min_observations = 20;
    config.monitor.decay = 0.9;
    config.seed = 3;
    return config;
  }

  core::AdaptiveLmkgConfig EmptyConfig() {
    core::AdaptiveLmkgConfig config = SmallConfig();
    config.initial_combos.clear();
    return config;
  }

  std::vector<Query> Workload(Topology topology, int size, size_t count,
                              uint64_t seed) {
    sampling::WorkloadGenerator generator(graph_);
    sampling::WorkloadGenerator::Options options;
    options.topology = topology;
    options.query_size = size;
    options.count = count;
    options.seed = seed;
    std::vector<Query> queries;
    for (auto& lq : generator.Generate(options))
      queries.push_back(std::move(lq.query));
    return queries;
  }

  // Model-served star-2/chain-2 plus exact size-1 and fallback chain-4:
  // every dispatch path a mapped replica must reproduce bit for bit.
  std::vector<Query> Probes() {
    std::vector<Query> probes;
    for (auto& q : Workload(Topology::kStar, 2, 12, 31)) probes.push_back(q);
    for (auto& q : Workload(Topology::kChain, 2, 12, 37)) probes.push_back(q);
    for (auto& q : Workload(Topology::kStar, 1, 4, 41)) probes.push_back(q);
    for (auto& q : Workload(Topology::kChain, 4, 4, 43)) probes.push_back(q);
    return probes;
  }

  std::unique_ptr<ModelStore> OpenStore() {
    std::unique_ptr<ModelStore> store;
    util::Status status =
        ModelStore::Open(dir_, ToStoreArch(SmallConfig()), &store);
    LMKG_CHECK(status.ok()) << status.message();
    return store;
  }

  // Writes every hydrated model of `donor` under `tenant` and commits.
  void PersistAll(core::AdaptiveLmkg* donor, ModelStore* store,
                  const std::string& tenant) {
    for (const Combo& combo : donor->ModelCombos()) {
      util::Status status = WriteModelSegment(store, tenant, combo,
                                              donor->FindModel(combo));
      ASSERT_TRUE(status.ok()) << status.message();
    }
    util::Status status = store->Commit();
    ASSERT_TRUE(status.ok()) << status.message();
  }

  rdf::Graph graph_;
  std::string dir_;
};

// --- round trip --------------------------------------------------------------

TEST_F(StoreTest, MappedReplicaMatchesDonorAndStreamedSnapshot) {
  core::AdaptiveLmkg donor(graph_, SmallConfig());
  ASSERT_EQ(donor.num_models(), 2u);
  {
    auto store = OpenStore();
    PersistAll(&donor, store.get(), "default");
  }

  // Streamed baseline: the PR-3 snapshot path (Save -> Load decodes and
  // copies every weight).
  std::ostringstream blob;
  ASSERT_TRUE(donor.Save(blob).ok());
  core::AdaptiveLmkg streamed(graph_, EmptyConfig());
  std::istringstream in(blob.str());
  ASSERT_TRUE(streamed.Load(in).ok());

  // Mapped cold start: a fresh process opens the store and borrows the
  // weights straight out of the mapping.
  auto store = OpenStore();
  EXPECT_EQ(store->num_segments(), 2u);
  StoreCache cache(*store, StoreCache::Options{});
  core::AdaptiveLmkg mapped(graph_, EmptyConfig());
  util::Status status = AttachReplica(&cache, "default", &mapped);
  ASSERT_TRUE(status.ok()) << status.message();
  EXPECT_EQ(mapped.num_models(), 2u);
  EXPECT_TRUE(mapped.Covers({Topology::kStar, 2}));
  EXPECT_TRUE(mapped.Covers({Topology::kChain, 2}));

  for (const Query& q : Probes()) {
    const double expected = donor.EstimateCardinality(q);
    EXPECT_DOUBLE_EQ(mapped.EstimateCardinality(q), expected);
    EXPECT_DOUBLE_EQ(streamed.EstimateCardinality(q), expected);
  }
  EXPECT_GT(cache.MappedBytes(), 0u);
  EXPECT_EQ(cache.evictions(), 0u);  // no budget, nothing paged out
}

TEST_F(StoreTest, HydrateAllMatchesLazyHydration) {
  core::AdaptiveLmkg donor(graph_, SmallConfig());
  auto store = OpenStore();
  PersistAll(&donor, store.get(), "default");

  StoreCache cache(*store, StoreCache::Options{});
  core::AdaptiveLmkg eager(graph_, EmptyConfig());
  AttachOptions options;
  options.hydrate_all = true;
  util::Status status = AttachReplica(&cache, "default", &eager, options);
  ASSERT_TRUE(status.ok()) << status.message();
  // Both combos already hydrated: FindModel sees them without a query.
  EXPECT_NE(eager.FindModel({Topology::kStar, 2}), nullptr);
  EXPECT_NE(eager.FindModel({Topology::kChain, 2}), nullptr);
  for (const Query& q : Probes())
    EXPECT_DOUBLE_EQ(eager.EstimateCardinality(q),
                     donor.EstimateCardinality(q));
}

// --- manifest / commit semantics ---------------------------------------------

TEST_F(StoreTest, CommitIsTheVisibilityPoint) {
  core::AdaptiveLmkg donor(graph_, SmallConfig());
  const Combo star2{Topology::kStar, 2};
  const ComboKey key = ToComboKey(star2);
  auto store = OpenStore();
  EXPECT_EQ(store->epoch(), 0u);

  ASSERT_TRUE(WriteModelSegment(store.get(), "default", star2,
                                donor.FindModel(star2))
                  .ok());
  // Staged, not committed: invisible to readers and to a reopened store.
  EXPECT_FALSE(store->Find("default", key).has_value());
  EXPECT_EQ(store->num_segments(), 0u);
  {
    auto reopened = OpenStore();
    EXPECT_EQ(reopened->num_segments(), 0u);
  }

  ASSERT_TRUE(store->Commit().ok());
  EXPECT_EQ(store->epoch(), 1u);
  auto info = store->Find("default", key);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->combo, key);
  EXPECT_EQ(info->epoch, 1u);
  EXPECT_TRUE(FileExists(dir_ + "/" + info->file));

  // Empty commit is a no-op, not an epoch bump.
  ASSERT_TRUE(store->Commit().ok());
  EXPECT_EQ(store->epoch(), 1u);

  // A reopened store sees exactly the committed set.
  {
    auto reopened = OpenStore();
    EXPECT_EQ(reopened->epoch(), 1u);
    ASSERT_EQ(reopened->num_segments(), 1u);
    EXPECT_TRUE(reopened->Find("default", key).has_value());
  }

  // Rewriting the combo supersedes the old file on commit.
  const std::string old_file = info->file;
  ASSERT_TRUE(WriteModelSegment(store.get(), "default", star2,
                                donor.FindModel(star2))
                  .ok());
  ASSERT_TRUE(store->Commit().ok());
  auto rewritten = store->Find("default", key);
  ASSERT_TRUE(rewritten.has_value());
  EXPECT_NE(rewritten->file, old_file);
  EXPECT_FALSE(FileExists(dir_ + "/" + old_file));

  // Removal: staged by RemoveSegment, applied (and unlinked) by Commit.
  ASSERT_TRUE(store->RemoveSegment("default", key).ok());
  EXPECT_TRUE(store->Find("default", key).has_value());
  ASSERT_TRUE(store->Commit().ok());
  EXPECT_FALSE(store->Find("default", key).has_value());
  EXPECT_EQ(store->num_segments(), 0u);
  EXPECT_FALSE(FileExists(dir_ + "/" + rewritten->file));
}

TEST_F(StoreTest, OpenRejectsArchMismatch) {
  core::AdaptiveLmkg donor(graph_, SmallConfig());
  {
    auto store = OpenStore();
    PersistAll(&donor, store.get(), "default");
  }
  StoreArch wrong = ToStoreArch(SmallConfig());
  wrong.hidden_dim += 1;
  std::unique_ptr<ModelStore> store;
  EXPECT_FALSE(ModelStore::Open(dir_, wrong, &store).ok());
}

TEST_F(StoreTest, RejectsUnknownTenantAndBadNames) {
  auto store = OpenStore();
  StoreCache cache(*store, StoreCache::Options{});
  const MappedSegment* segment = nullptr;
  EXPECT_FALSE(cache.Acquire("nobody", ComboKey{0, 2}, &segment).ok());

  core::AdaptiveLmkg donor(graph_, SmallConfig());
  const Combo star2{Topology::kStar, 2};
  // Tenant names become file names; separators and empties are refused.
  EXPECT_FALSE(WriteModelSegment(store.get(), "", star2,
                                 donor.FindModel(star2))
                   .ok());
  EXPECT_FALSE(WriteModelSegment(store.get(), "a/b", star2,
                                 donor.FindModel(star2))
                   .ok());
}

// --- corruption --------------------------------------------------------------

TEST_F(StoreTest, MapSegmentRejectsCorruptionLeavingCallerUntouched) {
  core::AdaptiveLmkg donor(graph_, SmallConfig());
  auto store = OpenStore();
  PersistAll(&donor, store.get(), "default");
  auto info = store->Find("default", ToComboKey({Topology::kStar, 2}));
  ASSERT_TRUE(info.has_value());
  const std::string path = dir_ + "/" + info->file;
  const std::string pristine = ReadAll(path);
  ASSERT_EQ(pristine.size(), info->bytes);

  {  // sanity: the pristine file maps and checksums clean
    MappedSegment segment;
    ASSERT_TRUE(
        store->MapSegment(*info, /*verify_crc=*/true, &segment).ok());
    EXPECT_TRUE(segment.valid());
    EXPECT_FALSE(segment.tensors().empty());
  }

  const auto expect_rejected = [&](const std::string& corrupted,
                                   bool verify_crc, const char* what) {
    WriteAll(path, corrupted);
    MappedSegment segment;
    util::Status status = store->MapSegment(*info, verify_crc, &segment);
    EXPECT_FALSE(status.ok()) << what;
    EXPECT_FALSE(segment.valid()) << what;  // caller state untouched
    WriteAll(path, pristine);
  };

  // Payload bit flip: structurally sound, caught by the checksum.
  std::string flipped = pristine;
  flipped.back() = static_cast<char>(flipped.back() ^ 0x40);
  expect_rejected(flipped, /*verify_crc=*/true, "payload bit flip");

  // Truncation: rejected even without the checksum pass.
  expect_rejected(pristine.substr(0, pristine.size() - 7),
                  /*verify_crc=*/false, "truncation");

  // Magic and version mismatches.
  std::string bad_magic = pristine;
  bad_magic[0] = 'X';
  expect_rejected(bad_magic, /*verify_crc=*/false, "bad magic");
  std::string bad_version = pristine;
  bad_version[4] = static_cast<char>(0xEE);
  expect_rejected(bad_version, /*verify_crc=*/false, "bad version");
}

TEST_F(StoreTest, CorruptSegmentFallsBackInsteadOfServingGarbage) {
  core::AdaptiveLmkg donor(graph_, SmallConfig());
  auto store = OpenStore();
  PersistAll(&donor, store.get(), "default");

  // Corrupt the star-2 payload on disk; chain-2 stays pristine.
  auto info = store->Find("default", ToComboKey({Topology::kStar, 2}));
  ASSERT_TRUE(info.has_value());
  const std::string path = dir_ + "/" + info->file;
  std::string bytes = ReadAll(path);
  bytes.back() = static_cast<char>(bytes.back() ^ 0x40);
  WriteAll(path, bytes);

  StoreCache::Options options;
  options.verify_crc = true;
  StoreCache cache(*store, options);
  core::AdaptiveLmkg mapped(graph_, EmptyConfig());
  ASSERT_TRUE(AttachReplica(&cache, "default", &mapped).ok());
  // Attach is lazy: the corruption is only discovered at hydration.
  EXPECT_TRUE(mapped.Covers({Topology::kStar, 2}));

  // The bad combo drops to the independence fallback — exactly what a
  // replica with no star-2 model serves — and is never probed again.
  core::AdaptiveLmkg fallback(graph_, EmptyConfig());
  for (const Query& q : Workload(Topology::kStar, 2, 8, 51))
    EXPECT_DOUBLE_EQ(mapped.EstimateCardinality(q),
                     fallback.EstimateCardinality(q));
  EXPECT_FALSE(mapped.Covers({Topology::kStar, 2}));

  // The pristine combo still serves bit-identically.
  for (const Query& q : Workload(Topology::kChain, 2, 8, 53))
    EXPECT_DOUBLE_EQ(mapped.EstimateCardinality(q),
                     donor.EstimateCardinality(q));
}

// --- StoreCache paging -------------------------------------------------------

double SumTensors(const MappedSegment& segment) {
  double sum = 0.0;
  for (const nn::ConstMatrixView& view : segment.tensors())
    sum = std::accumulate(view.data, view.data + view.rows * view.cols,
                          sum);
  return sum;
}

TEST_F(StoreTest, LruEvictionAndFaultBackIn) {
  core::AdaptiveLmkg donor(graph_, SmallConfig());
  auto store = OpenStore();
  PersistAll(&donor, store.get(), "default");
  auto star = store->Find("default", ToComboKey({Topology::kStar, 2}));
  auto chain = store->Find("default", ToComboKey({Topology::kChain, 2}));
  ASSERT_TRUE(star.has_value() && chain.has_value());

  // Budget admits either segment alone but never both.
  StoreCache::Options options;
  options.memory_budget_bytes = std::max(star->bytes, chain->bytes);
  StoreCache cache(*store, options);

  const MappedSegment* a = nullptr;
  ASSERT_TRUE(
      cache.Acquire("default", star->combo, &a).ok());
  const double sum_a = SumTensors(*a);  // faults every payload page in
  const size_t resident_before = a->ResidentBytes();
  EXPECT_GT(resident_before, 0u);
  EXPECT_EQ(cache.evictions(), 0u);

  // Acquiring the second segment overflows the budget: the LRU entry
  // (the star segment) is paged out, but its mapping — and every
  // borrowed pointer — survives.
  const MappedSegment* b = nullptr;
  ASSERT_TRUE(
      cache.Acquire("default", chain->combo, &b).ok());
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_LE(cache.ChargedBytes(), options.memory_budget_bytes);
  // MADV_DONTNEED dropped the segment's pages (mincore may still count
  // a stray page-cache page, so assert a strict drop, not zero).
  EXPECT_LT(a->ResidentBytes(), resident_before);

  // Fault-back-in: the same addresses re-read the same bytes from the
  // (immutable) file, and Touch re-charges the revived entry — evicting
  // the chain segment in turn.
  EXPECT_DOUBLE_EQ(SumTensors(*a), sum_a);
  EXPECT_GT(a->ResidentBytes(), 0u);
  cache.Touch("default", star->combo);
  EXPECT_EQ(cache.evictions(), 2u);
  EXPECT_LE(cache.ChargedBytes(), options.memory_budget_bytes);
}

TEST_F(StoreTest, AttachedReplicaStaysExactUnderMemoryPressure) {
  core::AdaptiveLmkg donor(graph_, SmallConfig());
  auto store = OpenStore();
  PersistAll(&donor, store.get(), "default");
  uint64_t max_bytes = 0;
  for (const SegmentInfo& info : store->Segments())
    max_bytes = std::max(max_bytes, info.bytes);

  StoreCache::Options options;
  options.memory_budget_bytes = max_bytes;  // one combo resident at a time
  StoreCache cache(*store, options);
  core::AdaptiveLmkg mapped(graph_, EmptyConfig());
  ASSERT_TRUE(AttachReplica(&cache, "default", &mapped).ok());

  // Alternate combos so every estimate revives the combo the previous
  // one paged out; the answers must not care.
  auto stars = Workload(Topology::kStar, 2, 10, 61);
  auto chains = Workload(Topology::kChain, 2, 10, 67);
  for (size_t i = 0; i < stars.size(); ++i) {
    EXPECT_DOUBLE_EQ(mapped.EstimateCardinality(stars[i]),
                     donor.EstimateCardinality(stars[i]));
    EXPECT_DOUBLE_EQ(mapped.EstimateCardinality(chains[i]),
                     donor.EstimateCardinality(chains[i]));
  }
  EXPECT_GT(cache.evictions(), 0u);
}

// --- lifecycle persistence ---------------------------------------------------

TEST_F(StoreTest, LifecyclePersistsSwapAndColdStartServesIt) {
  core::AdaptiveLmkgConfig config = SmallConfig();
  config.initial_combos = {{Topology::kStar, 2}};
  core::AdaptiveLmkg shadow(graph_, config);
  auto store = OpenStore();

  serving::ServiceConfig service_config;
  service_config.max_batch_size = 16;
  service_config.cache_capacity = 1024;
  service_config.workload_tap_capacity = 256;
  auto factory = serving::MakeAdaptiveReplicaFactory(graph_, config);
  std::ostringstream blob;
  ASSERT_TRUE(shadow.Save(blob).ok());
  std::vector<std::unique_ptr<core::CardinalityEstimator>> replicas;
  replicas.push_back(factory(blob.str()));
  serving::EstimatorService service(std::move(replicas), service_config);

  serving::ModelLifecycleConfig lifecycle_config;
  lifecycle_config.background = false;
  lifecycle_config.min_samples_per_cycle = 1;
  lifecycle_config.store = store.get();
  lifecycle_config.store_tenant = "prod";
  serving::ModelLifecycle lifecycle(&service, &shadow, factory,
                                    lifecycle_config);

  // Drift to chain-3: the cycle trains it, swaps it in, and persists the
  // whole tenant set in one commit.
  for (const Query& q : Workload(Topology::kChain, 3, 40, 9))
    (void)service.Estimate(q);
  serving::LifecycleReport report = lifecycle.RunOnce();
  ASSERT_TRUE(report.swapped);
  EXPECT_TRUE(report.persisted);
  EXPECT_EQ(store->num_segments(), shadow.num_models());
  EXPECT_TRUE(
      store->Find("prod", ToComboKey({Topology::kChain, 3})).has_value());

  // Cold start from the store alone: a fresh process must serve exactly
  // what the shadow trained, without a snapshot stream in sight.
  auto reopened = OpenStore();
  StoreCache cache(*reopened, StoreCache::Options{});
  core::AdaptiveLmkg cold(graph_, EmptyConfig());
  ASSERT_TRUE(AttachReplica(&cache, "prod", &cold).ok());
  EXPECT_EQ(cold.num_models(), shadow.num_models());
  std::vector<Query> probes;
  for (auto& q : Workload(Topology::kStar, 2, 8, 71)) probes.push_back(q);
  for (auto& q : Workload(Topology::kChain, 3, 8, 73)) probes.push_back(q);
  for (const Query& q : probes)
    EXPECT_DOUBLE_EQ(cold.EstimateCardinality(q),
                     shadow.EstimateCardinality(q));
}

// --- concurrency -------------------------------------------------------------

// Readers attach replicas through one shared cache (small budget, so
// eviction churns under contention) and estimate; a writer concurrently
// rewrites the same tenant's segments and commits — superseding, then
// unlinking, files the readers may have mapped. Every estimate must stay
// bit-identical to the donor: committed segment files are immutable, and
// an unlinked inode outlives its mappings.
TEST_F(StoreTest, ConcurrentMapAndCommitStress) {
  core::AdaptiveLmkg donor(graph_, SmallConfig());
  auto store = OpenStore();
  PersistAll(&donor, store.get(), "default");
  uint64_t max_bytes = 0;
  for (const SegmentInfo& info : store->Segments())
    max_bytes = std::max(max_bytes, info.bytes);

  StoreCache::Options options;
  options.memory_budget_bytes = max_bytes;
  StoreCache cache(*store, options);

  std::vector<Query> probes;
  for (auto& q : Workload(Topology::kStar, 2, 10, 81)) probes.push_back(q);
  for (auto& q : Workload(Topology::kChain, 2, 10, 83)) probes.push_back(q);
  std::vector<double> expected;
  expected.reserve(probes.size());
  for (const Query& q : probes)
    expected.push_back(donor.EstimateCardinality(q));

  constexpr size_t kReaders = 4;
  constexpr size_t kRounds = 3;
  std::vector<std::vector<double>> results(
      kReaders, std::vector<double>(probes.size(), 0.0));
  std::vector<std::thread> threads;
  threads.reserve(kReaders + 1);
  for (size_t r = 0; r < kReaders; ++r) {
    threads.emplace_back([&, r] {
      // Each reader owns its replica; only the cache and store are
      // shared. Attach itself races with the writer's commits.
      core::AdaptiveLmkg replica(graph_, EmptyConfig());
      util::Status status = AttachReplica(&cache, "default", &replica);
      LMKG_CHECK(status.ok()) << status.message();
      for (size_t round = 0; round < kRounds; ++round)
        for (size_t i = 0; i < probes.size(); ++i)
          results[r][i] = replica.EstimateCardinality(probes[i]);
    });
  }
  threads.emplace_back([&] {
    for (size_t i = 0; i < 8; ++i) {
      for (const Combo& combo : donor.ModelCombos()) {
        util::Status status = WriteModelSegment(
            store.get(), "default", combo, donor.FindModel(combo));
        LMKG_CHECK(status.ok()) << status.message();
      }
      util::Status status = store->Commit();
      LMKG_CHECK(status.ok()) << status.message();
    }
  });
  for (auto& t : threads) t.join();

  for (size_t r = 0; r < kReaders; ++r)
    for (size_t i = 0; i < probes.size(); ++i)
      EXPECT_DOUBLE_EQ(results[r][i], expected[i])
          << "reader " << r << " probe " << i;
  // The writer's 8 rewrite-commits all landed.
  EXPECT_EQ(store->epoch(), 9u);
  EXPECT_EQ(store->num_segments(), 2u);
}

}  // namespace
}  // namespace lmkg::store
