// Negative-compile probe for the Clang thread-safety build: the MPSC
// ring's consumer-side methods require the ring's phantom ExclusiveRole
// capability, claimed with AssertConsumer() by the one thread that IS
// the consumer. A pop from a function that never claimed the role must
// be rejected — the machine-checked half of the single-consumer
// contract. See guarded_field_without_lock.cc for the protocol.
#include "util/mpsc_ring.h"

namespace {

int PopAsConsumer(lmkg::util::MpscRing<int>& ring) {
  ring.AssertConsumer();  // this function is the one consumer
  int out = 0;
  (void)ring.TryPop(&out);
  ring.WaitForItem();
  return out;
}

#ifdef LMKG_TSA_VIOLATION
// Consumer role never claimed: -Wthread-safety must reject the pop.
int PopFromAnywhere(lmkg::util::MpscRing<int>& ring) {
  int out = 0;
  (void)ring.TryPop(&out);
  return out;
}
#endif

}  // namespace

int main() {
  lmkg::util::MpscRing<int> ring(8);
  ring.Close();
  return PopAsConsumer(ring);
}
