// Negative-compile probe for the Clang thread-safety build: calling an
// LMKG_REQUIRES(mu) function without holding mu must be rejected — the
// contract every *Locked helper in the tree (ModelStore::
// LowerBoundLocked, StoreCache::EnforceBudgetLocked, FeedbackCollector::
// FindOrCreate) relies on. See guarded_field_without_lock.cc for the
// control/violation compilation protocol.
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

struct Store {
  lmkg::util::Mutex mu;
  int entries LMKG_GUARDED_BY(mu) = 0;

  int CountLocked() LMKG_REQUIRES(mu) { return entries; }

  int Count() {
    lmkg::util::MutexLock lock(&mu);
    return CountLocked();
  }

#ifdef LMKG_TSA_VIOLATION
  // mu not held at the call: -Wthread-safety must reject this.
  int CountUnlocked() { return CountLocked(); }
#endif
};

}  // namespace

int main() {
  Store store;
  return store.Count();
}
