// Negative-compile probe for the Clang thread-safety build: a manual
// Mutex::Lock with no Unlock on some path leaks the capability past the
// end of the function, which -Wthread-safety must reject — the reason
// the try-lock sites adopt into a MutexLock guard instead of pairing
// TryLock/Unlock by hand around early returns. See
// guarded_field_without_lock.cc for the control/violation protocol.
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

void BalancedManualLock(lmkg::util::Mutex& mu) {
  mu.Lock();
  mu.Unlock();
}

#ifdef LMKG_TSA_VIOLATION
// Still held when the function returns: must not compile.
void LeakyManualLock(lmkg::util::Mutex& mu) { mu.Lock(); }
#endif

}  // namespace

int main() {
  lmkg::util::Mutex mu;
  BalancedManualLock(mu);
  return 0;
}
