// Negative-compile probe for the Clang thread-safety build: an
// LMKG_GUARDED_BY field touched without its mutex must be rejected.
//
// Compiled two ways by tests/thread_safety_compile/CMakeLists.txt
// (Clang only, -fsyntax-only -Wthread-safety -Werror=thread-safety):
// without LMKG_TSA_VIOLATION it must be clean — the positive control
// that proves the probe itself is well-formed — and with it the marked
// access must FAIL to compile (the CTest registration is WILL_FAIL).
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

struct Counter {
  lmkg::util::Mutex mu;
  int value LMKG_GUARDED_BY(mu) = 0;

  void Increment() {
    lmkg::util::MutexLock lock(&mu);
    ++value;
  }

#ifdef LMKG_TSA_VIOLATION
  // No lock held: -Wthread-safety must reject this write.
  void IncrementUnlocked() { ++value; }
#endif
};

}  // namespace

int main() {
  Counter counter;
  counter.Increment();
  return 0;
}
