#include "query/topology.h"

#include <gtest/gtest.h>

#include "query/query.h"
#include "util/random.h"

namespace lmkg::query {
namespace {

PatternTerm B(rdf::TermId id) { return PatternTerm::Bound(id); }
PatternTerm V(int v) { return PatternTerm::Variable(v); }

// --- agreement with the base classifier -------------------------------------

TEST(TopologyTest, SinglePattern) {
  Query q = MakeStarQuery(V(0), {{B(1), B(2)}});
  EXPECT_EQ(ClassifyDetailedTopology(q), DetailedTopology::kSingle);
}

TEST(TopologyTest, StarMatchesBaseClassifier) {
  Query q = MakeStarQuery(V(0), {{B(1), B(2)}, {B(3), V(1)}, {B(4), B(9)}});
  EXPECT_EQ(ClassifyTopology(q), Topology::kStar);
  EXPECT_EQ(ClassifyDetailedTopology(q), DetailedTopology::kStar);
}

TEST(TopologyTest, ChainMatchesBaseClassifier) {
  Query q = MakeChainQuery({V(0), V(1), V(2), B(7)}, {B(1), B(2), B(3)});
  EXPECT_EQ(ClassifyTopology(q), Topology::kChain);
  EXPECT_EQ(ClassifyDetailedTopology(q), DetailedTopology::kChain);
}

TEST(TopologyTest, ToBaseTopologyCoarsensCompositesOnly) {
  EXPECT_EQ(ToBaseTopology(DetailedTopology::kSingle), Topology::kSingle);
  EXPECT_EQ(ToBaseTopology(DetailedTopology::kStar), Topology::kStar);
  EXPECT_EQ(ToBaseTopology(DetailedTopology::kChain), Topology::kChain);
  for (DetailedTopology t :
       {DetailedTopology::kTree, DetailedTopology::kCycle,
        DetailedTopology::kClique, DetailedTopology::kPetal,
        DetailedTopology::kFlower, DetailedTopology::kGraph}) {
    EXPECT_EQ(ToBaseTopology(t), Topology::kComposite);
  }
}

// --- trees -------------------------------------------------------------------

TEST(TopologyTest, TreeBuilderAndClassification) {
  // Root with two children, one child has a grandchild: neither star nor
  // chain.
  Query q = MakeTreeQuery({V(0), V(1), V(2), V(3)}, {-1, 0, 0, 1},
                          {B(1), B(2), B(3)});
  ASSERT_EQ(q.size(), 3u);
  EXPECT_TRUE(q.Valid());
  EXPECT_EQ(ClassifyTopology(q), Topology::kComposite);
  EXPECT_EQ(ClassifyDetailedTopology(q), DetailedTopology::kTree);
}

TEST(TopologyTest, TreeWithAllRootParentsIsStar) {
  Query q =
      MakeTreeQuery({V(0), V(1), V(2)}, {-1, 0, 0}, {B(1), B(2)});
  EXPECT_EQ(ClassifyDetailedTopology(q), DetailedTopology::kStar);
}

TEST(TopologyTest, TreeWithPathParentsIsChain) {
  Query q =
      MakeTreeQuery({V(0), V(1), V(2)}, {-1, 0, 1}, {B(1), B(2)});
  EXPECT_EQ(ClassifyDetailedTopology(q), DetailedTopology::kChain);
}

TEST(TopologyTest, InvertedStarIsTreeNotStar) {
  // Two patterns sharing an *object*: the base classifier's star is
  // subject-centred, so this is composite; the node graph is acyclic.
  Query q;
  TriplePattern a;
  a.s = V(0);
  a.p = B(1);
  a.o = V(2);
  TriplePattern b;
  b.s = V(1);
  b.p = B(2);
  b.o = V(2);
  q.patterns = {a, b};
  NormalizeVariables(&q);
  EXPECT_EQ(ClassifyTopology(q), Topology::kComposite);
  EXPECT_EQ(ClassifyDetailedTopology(q), DetailedTopology::kTree);
}

// --- cycles ------------------------------------------------------------------

TEST(TopologyTest, TwoCycle) {
  Query q = MakeCycleQuery({V(0), V(1)}, {B(1), B(2)});
  ASSERT_EQ(q.size(), 2u);
  EXPECT_EQ(ClassifyDetailedTopology(q), DetailedTopology::kCycle);
}

TEST(TopologyTest, TriangleIsCycleNotClique) {
  // Precedence: a triangle satisfies both definitions; cycle wins.
  Query q = MakeCycleQuery({V(0), V(1), V(2)}, {B(1), B(2), B(3)});
  EXPECT_EQ(ClassifyDetailedTopology(q), DetailedTopology::kCycle);
}

TEST(TopologyTest, LongCycleWithBoundNodes) {
  Query q =
      MakeCycleQuery({V(0), B(5), V(1), B(9)}, {B(1), B(2), B(3), B(4)});
  EXPECT_EQ(ClassifyDetailedTopology(q), DetailedTopology::kCycle);
}

// --- cliques -----------------------------------------------------------------

TEST(TopologyTest, FourCliqueBuilderAndClassification) {
  Query q = MakeCliqueQuery({V(0), V(1), V(2), V(3)},
                            {B(1), B(2), B(3), B(4), B(5), B(6)});
  ASSERT_EQ(q.size(), 6u);
  EXPECT_EQ(ClassifyDetailedTopology(q), DetailedTopology::kClique);
}

TEST(TopologyTest, TriangleWithDoubledEdgeIsClique) {
  // 3 nodes, 4 edges: not a simple cycle (two nodes have degree 3), every
  // pair adjacent.
  Query q = MakeCycleQuery({V(0), V(1), V(2)}, {B(1), B(2), B(3)});
  TriplePattern extra;
  extra.s = V(0);
  extra.p = B(4);
  extra.o = V(1);
  q.patterns.push_back(extra);
  NormalizeVariables(&q);
  EXPECT_EQ(ClassifyDetailedTopology(q), DetailedTopology::kClique);
}

// --- petals ------------------------------------------------------------------

TEST(TopologyTest, PetalWithTwoInteriorPaths) {
  // source -> a -> target and source -> b -> target.
  Query q = MakePetalQuery(V(0), V(1),
                           {{{V(2)}, {B(1), B(2)}}, {{V(3)}, {B(3), B(4)}}});
  ASSERT_EQ(q.size(), 4u);
  EXPECT_EQ(ClassifyDetailedTopology(q), DetailedTopology::kPetal);
}

TEST(TopologyTest, PetalWithThreePathsOfMixedLength) {
  Query q = MakePetalQuery(
      V(0), V(1),
      {{{}, {B(1)}}, {{V(2)}, {B(2), B(3)}}, {{V(3), V(4)}, {B(4), B(5), B(6)}}});
  ASSERT_EQ(q.size(), 6u);
  EXPECT_EQ(ClassifyDetailedTopology(q), DetailedTopology::kPetal);
}

TEST(TopologyTest, ParallelEdgesBetweenDistinctSubjectObjectArePetal) {
  // (a p1 b)(b p2 a) is a 2-cycle; (a p1 b)(a p2 b) is a subject star.
  // Parallel paths of length 1 in *both* node directions with distinct
  // subjects: (a p1 b)(a p2 b) shares the subject => star. So use three
  // length-1 paths from source to target via different predicates but
  // distinct subjects is impossible — instead verify the petal with one
  // direct edge and one interior path.
  Query q =
      MakePetalQuery(V(0), V(1), {{{}, {B(1)}}, {{V(2)}, {B(2), B(3)}}});
  EXPECT_EQ(ClassifyDetailedTopology(q), DetailedTopology::kPetal);
}

// --- flowers -----------------------------------------------------------------

TEST(TopologyTest, StarWithAttachedCycleIsFlower) {
  // A star centre V0 with two plain out-edges plus a 2-cycle V0 <-> V3:
  // all cycles pass through V0, V0 has degree >= 3.
  Query q = MakeStarQuery(V(0), {{B(1), V(1)}, {B(2), V(2)}, {B(3), V(3)}});
  TriplePattern back;
  back.s = V(3);
  back.p = B(4);
  back.o = V(0);
  q.patterns.push_back(back);
  NormalizeVariables(&q);
  EXPECT_EQ(ClassifyDetailedTopology(q), DetailedTopology::kFlower);
}

TEST(TopologyTest, TwoTrianglesSharingANodeAreFlower) {
  // Built pattern-by-pattern: MakeCycleQuery would renumber each
  // triangle's variables densely from 0 and collapse the two triangles.
  auto edge = [](PatternTerm s, rdf::TermId p, PatternTerm o) {
    TriplePattern t;
    t.s = s;
    t.p = B(p);
    t.o = o;
    return t;
  };
  Query q;
  q.patterns = {edge(V(0), 1, V(1)), edge(V(1), 2, V(2)),
                edge(V(2), 3, V(0)), edge(V(0), 4, V(3)),
                edge(V(3), 5, V(4)), edge(V(4), 6, V(0))};
  NormalizeVariables(&q);
  EXPECT_EQ(ClassifyDetailedTopology(q), DetailedTopology::kFlower);
}

// --- general graphs ----------------------------------------------------------

TEST(TopologyTest, DisconnectedQueryIsGraph) {
  Query q;
  TriplePattern a;
  a.s = V(0);
  a.p = B(1);
  a.o = V(1);
  TriplePattern b;
  b.s = V(2);
  b.p = B(2);
  b.o = V(3);
  q.patterns = {a, b};
  NormalizeVariables(&q);
  EXPECT_EQ(ClassifyDetailedTopology(q), DetailedTopology::kGraph);
}

TEST(TopologyTest, SelfLoopStarStaysStar) {
  // A self-loop sharing the star subject is still a base-classifier star
  // (the paper's star definition only fixes the common subject).
  Query q;
  TriplePattern loop;
  loop.s = V(0);
  loop.p = B(1);
  loop.o = V(0);
  TriplePattern out;
  out.s = V(0);
  out.p = B(2);
  out.o = V(1);
  q.patterns = {loop, out};
  NormalizeVariables(&q);
  EXPECT_EQ(ClassifyDetailedTopology(q), DetailedTopology::kStar);
}

TEST(TopologyTest, NonStarSelfLoopIsGraph) {
  Query q;
  TriplePattern loop;
  loop.s = V(0);
  loop.p = B(1);
  loop.o = V(0);
  TriplePattern in;
  in.s = V(1);
  in.p = B(2);
  in.o = V(0);
  q.patterns = {loop, in};
  NormalizeVariables(&q);
  EXPECT_EQ(ClassifyDetailedTopology(q), DetailedTopology::kGraph);
}

TEST(TopologyTest, TwoDisjointCyclesAreGraph) {
  // No single node lies on every cycle.
  Query a = MakeCycleQuery({V(0), V(1), V(2)}, {B(1), B(2), B(3)});
  Query b = MakeCycleQuery({V(3), V(4), V(5)}, {B(4), B(5), B(6)});
  Query bridge;
  TriplePattern t;
  t.s = V(0);
  t.p = B(7);
  t.o = V(3);
  Query q;
  q.patterns = a.patterns;
  q.patterns.insert(q.patterns.end(), b.patterns.begin(), b.patterns.end());
  q.patterns.push_back(t);
  NormalizeVariables(&q);
  EXPECT_EQ(ClassifyDetailedTopology(q), DetailedTopology::kGraph);
}

// --- property sweeps ---------------------------------------------------------

// Random trees over varying sizes always classify as star, chain, or tree
// (never cyclic/graph), and the base classifier agrees through
// ToBaseTopology.
class RandomTreeTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomTreeTest, RandomTreesClassifyAcyclic) {
  const int k = GetParam();
  util::Pcg32 rng(17, 0xdead);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<PatternTerm> nodes;
    std::vector<int> parents = {-1};
    std::vector<PatternTerm> preds;
    for (int i = 0; i <= k; ++i) nodes.push_back(V(i));
    for (int i = 1; i <= k; ++i) {
      parents.push_back(static_cast<int>(rng.UniformInt(i)));
      preds.push_back(B(1 + rng.UniformInt(5)));
    }
    Query q = MakeTreeQuery(nodes, parents, preds);
    DetailedTopology t = ClassifyDetailedTopology(q);
    EXPECT_TRUE(t == DetailedTopology::kStar || t == DetailedTopology::kChain ||
                t == DetailedTopology::kTree || t == DetailedTopology::kSingle)
        << DetailedTopologyName(t) << " for " << QueryToString(q);
    EXPECT_EQ(ToBaseTopology(t), ClassifyTopology(q));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, RandomTreeTest,
                         ::testing::Values(1, 2, 3, 5, 8));

// Cycles of every length classify as kCycle regardless of bound/variable
// node mixtures.
class RandomCycleTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomCycleTest, CyclesClassifyAsCycle) {
  const int k = GetParam();
  util::Pcg32 rng(23, 0xbeef);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<PatternTerm> nodes;
    std::vector<PatternTerm> preds;
    for (int i = 0; i < k; ++i) {
      // Mix variables and bound ids; bound ids must be distinct to keep
      // the node count at k.
      nodes.push_back(rng.UniformInt(2) == 0 ? V(i)
                                             : B(100 + static_cast<uint32_t>(i)));
      preds.push_back(B(1 + rng.UniformInt(5)));
    }
    Query q = MakeCycleQuery(nodes, preds);
    EXPECT_EQ(ClassifyDetailedTopology(q), DetailedTopology::kCycle)
        << QueryToString(q);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, RandomCycleTest,
                         ::testing::Values(2, 3, 4, 6, 9));

}  // namespace
}  // namespace lmkg::query
