#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "nn/adam.h"
#include "nn/gradcheck.h"
#include "nn/loss.h"
#include "nn/made.h"
#include "util/random.h"

namespace lmkg::nn {
namespace {

ResMadeConfig TinyConfig() {
  ResMadeConfig config;
  config.domain_sizes = {4, 3, 4};  // node, predicate, node
  config.embedding_dim = 6;
  config.hidden_dim = 16;
  config.num_blocks = 1;
  config.seed = 5;
  return config;
}

std::vector<uint32_t> RandomBatch(const ResMadeConfig& config, size_t rows,
                                  util::Pcg32& rng) {
  std::vector<uint32_t> batch;
  batch.reserve(rows * config.domain_sizes.size());
  for (size_t r = 0; r < rows; ++r)
    for (uint32_t domain : config.domain_sizes)
      batch.push_back(1 + rng.UniformInt(domain));
  return batch;
}

TEST(ResMadeTest, ConditionalsSumToOne) {
  ResMadeConfig config = TinyConfig();
  ResMade model(config);
  util::Pcg32 rng(1);
  auto batch = RandomBatch(config, 5, rng);
  Matrix probs;
  for (size_t t = 0; t < config.domain_sizes.size(); ++t) {
    model.ConditionalProbs(batch, 5, t, &probs);
    ASSERT_EQ(probs.rows(), 5u);
    ASSERT_EQ(probs.cols(), config.domain_sizes[t]);
    for (size_t r = 0; r < 5; ++r) {
      float sum = 0;
      for (size_t c = 0; c < probs.cols(); ++c) {
        EXPECT_GE(probs.at(r, c), 0.0f);
        sum += probs.at(r, c);
      }
      EXPECT_NEAR(sum, 1.0f, 1e-4);
    }
  }
}

TEST(ResMadeTest, AutoregressivePropertyHolds) {
  // P(x_t | x_<t) must not depend on positions >= t.
  ResMadeConfig config = TinyConfig();
  ResMade model(config);
  util::Pcg32 rng(2);
  const size_t T = config.domain_sizes.size();
  auto batch = RandomBatch(config, 1, rng);
  Matrix before, after;
  for (size_t t = 0; t < T; ++t) {
    model.ConditionalProbs(batch, 1, t, &before);
    auto mutated = batch;
    // Scramble every position >= t.
    for (size_t u = t; u < T; ++u)
      mutated[u] = 1 + (batch[u] % config.domain_sizes[u]);
    for (size_t u = t; u < T; ++u)
      mutated[u] = 1 + rng.UniformInt(config.domain_sizes[u]);
    model.ConditionalProbs(mutated, 1, t, &after);
    for (size_t c = 0; c < before.cols(); ++c)
      EXPECT_FLOAT_EQ(before.at(0, c), after.at(0, c))
          << "position " << t << " depends on later input";
  }
}

TEST(ResMadeTest, FirstConditionalIsInputIndependent) {
  ResMadeConfig config = TinyConfig();
  ResMade model(config);
  util::Pcg32 rng(3);
  auto a = RandomBatch(config, 1, rng);
  auto b = RandomBatch(config, 1, rng);
  Matrix pa, pb;
  model.ConditionalProbs(a, 1, 0, &pa);
  model.ConditionalProbs(b, 1, 0, &pb);
  for (size_t c = 0; c < pa.cols(); ++c)
    EXPECT_FLOAT_EQ(pa.at(0, c), pb.at(0, c));
}

TEST(ResMadeTest, GradientsMatchFiniteDifferences) {
  ResMadeConfig config = TinyConfig();
  config.hidden_dim = 8;
  ResMade model(config);
  util::Pcg32 rng(4);
  auto batch = RandomBatch(config, 3, rng);
  auto eval = [&](bool with_grad) {
    if (with_grad) {
      model.ZeroGrad();
      return model.ForwardBackward(batch, 3);
    }
    return model.Evaluate(batch, 3);
  };
  GradCheckResult result =
      CheckGradients(eval, model.Params(), 5e-4, 12);
  EXPECT_GT(result.entries_checked, 0u);
  EXPECT_EQ(result.violations, 0u)
      << "max_abs " << result.max_abs_diff << " max_rel "
      << result.max_rel_diff;
}

TEST(ResMadeTest, TrainingRecoversASkewedDistribution) {
  // Data: x1 in {1,2} with P(1)=0.8; x2 deterministic given x1;
  // x3 uniform. The model must recover the joint closely.
  ResMadeConfig config;
  config.domain_sizes = {2, 2, 2};
  config.embedding_dim = 4;
  config.hidden_dim = 16;
  config.num_blocks = 1;
  config.seed = 6;
  ResMade model(config);
  Adam adam(model.Params(), 5e-3f);
  util::Pcg32 rng(7);

  auto sample_row = [&](std::vector<uint32_t>* row) {
    uint32_t x1 = rng.Bernoulli(0.8) ? 1 : 2;
    uint32_t x2 = x1;                     // perfectly correlated
    uint32_t x3 = rng.Bernoulli(0.5) ? 1 : 2;
    row->push_back(x1);
    row->push_back(x2);
    row->push_back(x3);
  };
  const size_t batch_size = 64;
  std::vector<uint32_t> batch;
  for (int step = 0; step < 400; ++step) {
    batch.clear();
    for (size_t r = 0; r < batch_size; ++r) sample_row(&batch);
    model.ZeroGrad();
    model.ForwardBackward(batch, batch_size);
    adam.Step();
  }

  // P(x1): bias-only head must match the marginal.
  std::vector<uint32_t> probe = {1, 1, 1};
  Matrix probs;
  model.ConditionalProbs(probe, 1, 0, &probs);
  EXPECT_NEAR(probs.at(0, 0), 0.8f, 0.05f);
  // P(x2 | x1): near-deterministic.
  model.ConditionalProbs(probe, 1, 1, &probs);
  EXPECT_GT(probs.at(0, 0), 0.9f);
  probe[0] = 2;
  model.ConditionalProbs(probe, 1, 1, &probs);
  EXPECT_GT(probs.at(0, 1), 0.9f);
  // P(x3): roughly uniform.
  model.ConditionalProbs(probe, 1, 2, &probs);
  EXPECT_NEAR(probs.at(0, 0), 0.5f, 0.1f);
}

TEST(ResMadeTest, TrainingReducesNll) {
  ResMadeConfig config = TinyConfig();
  ResMade model(config);
  Adam adam(model.Params(), 1e-2f);
  util::Pcg32 rng(8);
  // Fixed dataset with structure (x3 == x1).
  std::vector<uint32_t> data;
  const size_t rows = 128;
  for (size_t r = 0; r < rows; ++r) {
    uint32_t x1 = 1 + rng.UniformInt(4);
    data.push_back(x1);
    data.push_back(1 + rng.UniformInt(3));
    data.push_back(x1);
  }
  double first = model.Evaluate(data, rows);
  for (int step = 0; step < 150; ++step) {
    model.ZeroGrad();
    model.ForwardBackward(data, rows);
    adam.Step();
  }
  double last = model.Evaluate(data, rows);
  EXPECT_LT(last, first * 0.7);
}

TEST(ResMadeTest, SharedEmbeddingTablesAcrossEqualDomains) {
  // Two positions with domain 4 share one table; the model with shared
  // tables has fewer parameters than positions * table size.
  ResMadeConfig config = TinyConfig();
  ResMade model(config);
  // Tables: domain 4 -> (5 x 6), domain 3 -> (4 x 6). If they were
  // per-position there would be a third table of (5 x 6).
  size_t expected_embed = (4 + 1) * 6 + (3 + 1) * 6;
  size_t total = model.ParamCount();
  ResMadeConfig bigger = config;
  bigger.domain_sizes = {4, 3, 4, 4};  // one more shared-domain position
  ResMade model2(bigger);
  // Extra position adds input-layer + head params but no new embedding
  // table; check indirectly via a lower bound.
  EXPECT_GT(model2.ParamCount(), total);
  EXPECT_GT(total, expected_embed);
}

TEST(ResMadeTest, EvaluateMatchesConditionalProduct) {
  // Mean total NLL from Evaluate must equal the sum of -log of the
  // per-position conditionals.
  ResMadeConfig config = TinyConfig();
  ResMade model(config);
  util::Pcg32 rng(9);
  auto batch = RandomBatch(config, 1, rng);
  double nll = model.Evaluate(batch, 1);
  double manual = 0.0;
  Matrix probs;
  for (size_t t = 0; t < config.domain_sizes.size(); ++t) {
    model.ConditionalProbs(batch, 1, t, &probs);
    manual -= std::log(probs.at(0, batch[t] - 1));
  }
  EXPECT_NEAR(nll, manual, 1e-4);
}

TEST(ResMadeDeathTest, ValueOutOfDomainAborts) {
  ResMadeConfig config = TinyConfig();
  ResMade model(config);
  std::vector<uint32_t> batch = {5, 1, 1};  // 5 > domain 4
  EXPECT_DEATH(model.Evaluate(batch, 1), "LMKG_CHECK");
}

}  // namespace
}  // namespace lmkg::nn
