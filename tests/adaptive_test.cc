#include "core/adaptive.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/workload_monitor.h"
#include "data/dataset.h"
#include "query/topology.h"
#include "sampling/workload.h"
#include "test_util.h"
#include "util/math.h"

namespace lmkg::core {
namespace {

using query::PatternTerm;
using query::Query;
using query::Topology;
using Combo = WorkloadMonitor::Combo;

PatternTerm B(rdf::TermId id) { return PatternTerm::Bound(id); }
PatternTerm V(int v) { return PatternTerm::Variable(v); }

Query Star(int size) {
  std::vector<std::pair<PatternTerm, PatternTerm>> pairs;
  for (int i = 0; i < size; ++i) pairs.emplace_back(B(i + 1), V(i + 1));
  return query::MakeStarQuery(V(0), pairs);
}

Query Chain(int size) {
  std::vector<PatternTerm> nodes;
  std::vector<PatternTerm> preds;
  for (int i = 0; i <= size; ++i) nodes.push_back(V(i));
  for (int i = 0; i < size; ++i) preds.push_back(B(i + 1));
  return query::MakeChainQuery(nodes, preds);
}

// --- WorkloadMonitor ----------------------------------------------------------

TEST(WorkloadMonitorTest, SharesSumToOne) {
  WorkloadMonitor monitor;
  for (int i = 0; i < 40; ++i) monitor.Observe(Star(2));
  for (int i = 0; i < 20; ++i) monitor.Observe(Chain(3));
  double sum = 0.0;
  for (const auto& cs : monitor.Shares()) sum += cs.share;
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_EQ(monitor.observations(), 60u);
}

TEST(WorkloadMonitorTest, RecentComboDominatesAfterShift) {
  WorkloadMonitor::Options options;
  options.decay = 0.9;
  WorkloadMonitor monitor(options);
  for (int i = 0; i < 100; ++i) monitor.Observe(Star(2));
  for (int i = 0; i < 60; ++i) monitor.Observe(Chain(3));
  auto shares = monitor.Shares();
  ASSERT_EQ(shares.size(), 2u);
  EXPECT_EQ(shares[0].combo.topology, Topology::kChain);
  EXPECT_EQ(shares[0].combo.size, 3);
  EXPECT_GT(shares[0].share, 0.95);  // the old mix decayed away
  EXPECT_TRUE(monitor.IsCold({Topology::kStar, 2}));
}

TEST(WorkloadMonitorTest, HotCombosRequireMinObservations) {
  WorkloadMonitor::Options options;
  options.min_observations = 50;
  WorkloadMonitor monitor(options);
  for (int i = 0; i < 49; ++i) monitor.Observe(Star(2));
  EXPECT_TRUE(monitor.HotCombos().empty());
  monitor.Observe(Star(2));
  ASSERT_EQ(monitor.HotCombos().size(), 1u);
  EXPECT_EQ(monitor.HotCombos()[0].size, 2);
}

TEST(WorkloadMonitorTest, NeverObservedComboIsCold) {
  WorkloadMonitor monitor;
  EXPECT_TRUE(monitor.IsCold({Topology::kChain, 8}));
}

TEST(WorkloadMonitorTest, DecayedSharesMatchClosedForm) {
  // Observe A then B with decay d: A's weight decays to d while B adds
  // 1, and the total is d + 1 — the shares must be exactly d/(d+1) and
  // 1/(d+1) (the time-stamped lazy-decay storage must cancel exactly).
  WorkloadMonitor::Options options;
  options.decay = 0.5;
  WorkloadMonitor monitor(options);
  monitor.Observe(Star(2));
  monitor.Observe(Chain(3));
  auto shares = monitor.Shares();
  ASSERT_EQ(shares.size(), 2u);
  EXPECT_EQ(shares[0].combo.topology, Topology::kChain);
  EXPECT_DOUBLE_EQ(shares[0].share, 1.0 / 1.5);
  EXPECT_DOUBLE_EQ(shares[1].share, 0.5 / 1.5);

  // Longer mixed run vs. the closed form sum_{k} d^(age_k): 10x A then
  // 5x B — A's decayed weight is sum_{k=5}^{14} d^k, B's is
  // sum_{k=0}^{4} d^k, total is sum_{k=0}^{14} d^k.
  const double d = 0.9;
  WorkloadMonitor::Options mixed_options;
  mixed_options.decay = d;
  WorkloadMonitor mixed(mixed_options);
  for (int i = 0; i < 10; ++i) mixed.Observe(Star(2));
  for (int i = 0; i < 5; ++i) mixed.Observe(Chain(3));
  double weight_a = 0.0, weight_b = 0.0, total = 0.0;
  for (int age = 0; age < 15; ++age) {
    const double w = std::pow(d, age);
    total += w;
    (age < 5 ? weight_b : weight_a) += w;
  }
  for (const auto& cs : mixed.Shares()) {
    const double want =
        cs.combo.topology == Topology::kStar ? weight_a : weight_b;
    EXPECT_NEAR(cs.share, want / total, 1e-12);
  }
  EXPECT_NEAR(mixed.total_weight(), total, 1e-12);
}

TEST(WorkloadMonitorTest, HotAndColdThresholdsAreStrictBoundaries) {
  WorkloadMonitor::Options options;
  options.decay = 1.0;  // plain frequencies: thresholds hit exactly
  options.hot_share = 0.6;
  options.cold_share = 0.25;
  options.min_observations = 1;
  WorkloadMonitor monitor(options);
  for (int i = 0; i < 7; ++i) monitor.Observe(Star(2));
  for (int i = 0; i < 3; ++i) monitor.Observe(Chain(3));
  // Star at 0.7 >= 0.6 is hot; chain at 0.3 is neither hot nor cold.
  auto hot = monitor.HotCombos();
  ASSERT_EQ(hot.size(), 1u);
  EXPECT_EQ(hot[0].topology, Topology::kStar);
  EXPECT_FALSE(monitor.IsCold({Topology::kChain, 3}));
  // Push chain to the cold boundary exactly: 3/12 == cold_share, and
  // "cold" means strictly below, so it is still warm...
  for (int i = 0; i < 2; ++i) monitor.Observe(Star(2));
  EXPECT_FALSE(monitor.IsCold({Topology::kChain, 3}));
  // ...one more observation tips it under.
  monitor.Observe(Star(2));
  EXPECT_TRUE(monitor.IsCold({Topology::kChain, 3}));
}

TEST(WorkloadMonitorTest, SaveRestoreStateRoundTripsExactly) {
  WorkloadMonitor::Options options;
  options.decay = 0.93;
  WorkloadMonitor monitor(options);
  for (int i = 0; i < 25; ++i) monitor.Observe(Star(2));
  for (int i = 0; i < 9; ++i) monitor.Observe(Chain(3));

  WorkloadMonitor restored(options);
  restored.RestoreState(monitor.SaveState());
  EXPECT_EQ(restored.observations(), monitor.observations());
  EXPECT_DOUBLE_EQ(restored.total_weight(), monitor.total_weight());
  auto original_shares = monitor.Shares();
  auto restored_shares = restored.Shares();
  ASSERT_EQ(original_shares.size(), restored_shares.size());
  for (size_t i = 0; i < original_shares.size(); ++i) {
    EXPECT_EQ(restored_shares[i].combo, original_shares[i].combo);
    EXPECT_DOUBLE_EQ(restored_shares[i].share, original_shares[i].share);
  }
  // The restored monitor keeps decaying identically.
  monitor.Observe(Chain(3));
  restored.Observe(Chain(3));
  EXPECT_DOUBLE_EQ(restored.total_weight(), monitor.total_weight());
  EXPECT_EQ(restored.IsCold({Topology::kStar, 2}),
            monitor.IsCold({Topology::kStar, 2}));
}

TEST(WorkloadMonitorTest, MinorityComboBelowHotShare) {
  WorkloadMonitor::Options options;
  options.hot_share = 0.3;
  options.min_observations = 10;
  WorkloadMonitor monitor(options);
  for (int i = 0; i < 90; ++i) monitor.Observe(Star(2));
  for (int i = 0; i < 10; ++i) monitor.Observe(Chain(5));
  auto hot = monitor.HotCombos();
  ASSERT_EQ(hot.size(), 1u);
  EXPECT_EQ(hot[0].topology, Topology::kStar);
}

// --- AdaptiveLmkg --------------------------------------------------------------

class AdaptiveLmkgTest : public ::testing::Test {
 protected:
  AdaptiveLmkgTest()
      : graph_(lmkg::testing::MakeRandomGraph(40, 5, 400, 23)) {}

  AdaptiveLmkgConfig SmallConfig() {
    AdaptiveLmkgConfig config;
    config.s_config.hidden_dim = 32;
    config.s_config.epochs = 10;
    config.train_queries = 120;
    config.initial_combos = {{Topology::kStar, 2}};
    config.monitor.min_observations = 20;
    config.monitor.decay = 0.9;
    config.seed = 3;
    return config;
  }

  std::vector<sampling::LabeledQuery> MakeWorkload(Topology topology,
                                                   int size, size_t count,
                                                   uint64_t seed) {
    sampling::WorkloadGenerator generator(graph_);
    sampling::WorkloadGenerator::Options options;
    options.topology = topology;
    options.query_size = size;
    options.count = count;
    options.seed = seed;
    return generator.Generate(options);
  }

  rdf::Graph graph_;
};

TEST_F(AdaptiveLmkgTest, BootstrapsInitialCombos) {
  AdaptiveLmkg adaptive(graph_, SmallConfig());
  EXPECT_EQ(adaptive.num_models(), 1u);
  EXPECT_TRUE(adaptive.Covers({Topology::kStar, 2}));
  EXPECT_FALSE(adaptive.Covers({Topology::kChain, 3}));
}

TEST_F(AdaptiveLmkgTest, EstimatesUncoveredQueriesViaFallback) {
  AdaptiveLmkg adaptive(graph_, SmallConfig());
  auto chains = MakeWorkload(Topology::kChain, 3, 10, 7);
  ASSERT_FALSE(chains.empty());
  for (const auto& lq : chains) {
    double est = adaptive.EstimateCardinality(lq.query);
    EXPECT_TRUE(std::isfinite(est));
    EXPECT_GE(est, 0.0);
  }
}

TEST_F(AdaptiveLmkgTest, AdaptCreatesModelForShiftedWorkload) {
  AdaptiveLmkg adaptive(graph_, SmallConfig());
  auto chains = MakeWorkload(Topology::kChain, 3, 40, 9);
  ASSERT_GE(chains.size(), 25u);
  for (const auto& lq : chains) adaptive.EstimateCardinality(lq.query);
  auto report = adaptive.Adapt();
  ASSERT_EQ(report.created.size(), 1u);
  EXPECT_EQ(report.created[0].topology, Topology::kChain);
  EXPECT_EQ(report.created[0].size, 3);
  EXPECT_TRUE(adaptive.Covers({Topology::kChain, 3}));
  EXPECT_EQ(adaptive.num_models(), 2u);
  // A second Adapt with no further shift is a no-op.
  auto second = adaptive.Adapt();
  EXPECT_TRUE(second.created.empty());
}

TEST_F(AdaptiveLmkgTest, AdaptationImprovesShiftedAccuracyOnCorrelatedData) {
  // On a uniform random graph the independence fallback is nearly exact
  // (there is no correlation to miss), so the learned model cannot win.
  // Use the correlated SWDF-profile generator instead — the setting the
  // paper motivates — and shift the workload to star-3, where the
  // fallback systematically underestimates (see IndependenceTest /
  // bench_ext_baselines).
  rdf::Graph swdf = data::MakeDataset("swdf", 0.01, /*seed=*/5);
  AdaptiveLmkgConfig config;
  config.s_config.hidden_dim = 64;
  config.s_config.epochs = 25;
  config.train_queries = 250;
  config.initial_combos = {{Topology::kChain, 2}};
  config.monitor.min_observations = 20;
  config.monitor.decay = 0.9;
  config.seed = 3;
  AdaptiveLmkg adaptive(swdf, config);

  sampling::WorkloadGenerator generator(swdf);
  sampling::WorkloadGenerator::Options options;
  options.topology = Topology::kStar;
  options.query_size = 3;
  options.count = 80;
  options.seed = 11;
  auto stars = generator.Generate(options);
  ASSERT_GE(stars.size(), 60u);

  auto median_qerror = [&](size_t from, size_t to) {
    std::vector<double> qerrors;
    for (size_t i = from; i < to && i < stars.size(); ++i)
      qerrors.push_back(
          util::QError(adaptive.EstimateCardinality(stars[i].query),
                       stars[i].cardinality));
    return util::QErrorStats::Compute(std::move(qerrors)).median;
  };
  double before = median_qerror(0, 30);
  auto report = adaptive.Adapt();
  ASSERT_EQ(report.created.size(), 1u);
  ASSERT_TRUE(adaptive.Covers({Topology::kStar, 3}));
  double after = median_qerror(30, 60);
  EXPECT_LT(after, before) << "before=" << before << " after=" << after;
}

TEST_F(AdaptiveLmkgTest, MemoryBudgetDropsColdModels) {
  AdaptiveLmkgConfig config = SmallConfig();
  config.initial_combos = {{Topology::kStar, 2}, {Topology::kChain, 2}};
  config.memory_budget_bytes = 1;  // everything over budget
  AdaptiveLmkg adaptive(graph_, config);
  EXPECT_EQ(adaptive.num_models(), 2u);
  // Only star-2 stays warm.
  auto stars = MakeWorkload(Topology::kStar, 2, 40, 13);
  for (const auto& lq : stars) adaptive.EstimateCardinality(lq.query);
  auto report = adaptive.Adapt();
  ASSERT_EQ(report.dropped.size(), 1u);
  EXPECT_EQ(report.dropped[0].topology, Topology::kChain);
  EXPECT_FALSE(adaptive.Covers({Topology::kChain, 2}));
  // The hot star model is never dropped even though the budget is still
  // exceeded: only cold models are eligible.
  EXPECT_TRUE(adaptive.Covers({Topology::kStar, 2}));
}

TEST_F(AdaptiveLmkgTest, AdaptCreateThenDropRoundTripUnderBudget) {
  // Size a budget that fits roughly one specialized model by probing a
  // bootstrap instance.
  const size_t one_model_bytes =
      AdaptiveLmkg(graph_, SmallConfig()).MemoryBytes();
  AdaptiveLmkgConfig config = SmallConfig();  // initial: star-2
  config.memory_budget_bytes = one_model_bytes * 3 / 2;
  AdaptiveLmkg adaptive(graph_, config);

  // Shift 1: all chain-3 — Adapt must create the chain model AND, in
  // the same pass, evict the now-cold star model to honor the budget.
  auto chains = MakeWorkload(Topology::kChain, 3, 40, 9);
  ASSERT_GE(chains.size(), 25u);
  for (const auto& lq : chains) adaptive.EstimateCardinality(lq.query);
  auto first = adaptive.Adapt();
  ASSERT_EQ(first.created.size(), 1u);
  EXPECT_EQ(first.created[0], (Combo{Topology::kChain, 3}));
  ASSERT_EQ(first.dropped.size(), 1u);
  EXPECT_EQ(first.dropped[0], (Combo{Topology::kStar, 2}));
  EXPECT_TRUE(adaptive.Covers({Topology::kChain, 3}));
  EXPECT_FALSE(adaptive.Covers({Topology::kStar, 2}));

  // Shift 2: back to star-2 — the round trip re-creates the star model
  // and drops the chain model, so the pool tracks the workload both
  // ways under the same budget.
  auto stars = MakeWorkload(Topology::kStar, 2, 40, 13);
  ASSERT_GE(stars.size(), 25u);
  for (const auto& lq : stars) adaptive.EstimateCardinality(lq.query);
  auto second = adaptive.Adapt();
  ASSERT_EQ(second.created.size(), 1u);
  EXPECT_EQ(second.created[0], (Combo{Topology::kStar, 2}));
  ASSERT_EQ(second.dropped.size(), 1u);
  EXPECT_EQ(second.dropped[0], (Combo{Topology::kChain, 3}));
  EXPECT_TRUE(adaptive.Covers({Topology::kStar, 2}));
  EXPECT_FALSE(adaptive.Covers({Topology::kChain, 3}));
  EXPECT_EQ(adaptive.num_models(), 1u);

  // Estimates keep flowing for both shapes throughout.
  EXPECT_TRUE(
      std::isfinite(adaptive.EstimateCardinality(chains[0].query)));
  EXPECT_TRUE(
      std::isfinite(adaptive.EstimateCardinality(stars[0].query)));
}

TEST_F(AdaptiveLmkgTest, TwoPatternCompositeStaysOnFallback) {
  // A hot 2-pattern composite (e.g. an object-shared "inverted star")
  // cannot get a tree-trained model (trees need >= 3 edges); Adapt must
  // skip it rather than abort, and estimates keep flowing.
  AdaptiveLmkgConfig config = SmallConfig();
  config.monitor.min_observations = 10;
  AdaptiveLmkg adaptive(graph_, config);
  Query q;
  query::TriplePattern a;
  a.s = V(0);
  a.p = B(1);
  a.o = V(2);
  query::TriplePattern b;
  b.s = V(1);
  b.p = B(2);
  b.o = V(2);
  q.patterns = {a, b};
  query::NormalizeVariables(&q);
  ASSERT_EQ(query::ClassifyTopology(q), Topology::kComposite);
  for (int i = 0; i < 30; ++i) adaptive.EstimateCardinality(q);
  auto report = adaptive.Adapt();
  EXPECT_TRUE(report.created.empty());
  EXPECT_FALSE(adaptive.Covers({Topology::kComposite, 2}));
  EXPECT_TRUE(std::isfinite(adaptive.EstimateCardinality(q)));
}

TEST_F(AdaptiveLmkgTest, HotCompositeTreeGetsSgModel) {
  AdaptiveLmkgConfig config = SmallConfig();
  config.monitor.min_observations = 10;
  AdaptiveLmkg adaptive(graph_, config);
  Query tree = query::MakeTreeQuery({V(0), V(1), V(2), V(3)}, {-1, 0, 0, 1},
                                    {B(1), B(2), B(3)});
  for (int i = 0; i < 30; ++i) adaptive.EstimateCardinality(tree);
  auto report = adaptive.Adapt();
  ASSERT_EQ(report.created.size(), 1u);
  EXPECT_EQ(report.created[0].topology, Topology::kComposite);
  EXPECT_EQ(report.created[0].size, 3);
  EXPECT_TRUE(adaptive.Covers({Topology::kComposite, 3}));
}

TEST_F(AdaptiveLmkgTest, SingletonQueriesAnsweredExactly) {
  AdaptiveLmkg adaptive(graph_, SmallConfig());
  query::Executor executor(graph_);
  Query q = query::MakeStarQuery(V(0), {{B(1), V(1)}});
  EXPECT_DOUBLE_EQ(adaptive.EstimateCardinality(q),
                   executor.Cardinality(q));
}

}  // namespace
}  // namespace lmkg::core
