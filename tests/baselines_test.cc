#include <gtest/gtest.h>

#include <cmath>

#include "baselines/cset.h"
#include "baselines/independence.h"
#include "baselines/impr.h"
#include "baselines/jsub.h"
#include "baselines/mscn.h"
#include "baselines/sumrdf.h"
#include "baselines/wander_join.h"
#include "query/executor.h"
#include "sampling/workload.h"
#include "test_util.h"
#include "util/math.h"

namespace lmkg::baselines {
namespace {

using query::PatternTerm;
using query::Query;
using query::Topology;

PatternTerm B(rdf::TermId id) { return PatternTerm::Bound(id); }
PatternTerm V(int v) { return PatternTerm::Variable(v); }

// --- CSET ------------------------------------------------------------------

TEST(CsetTest, ExactOnHomogeneousStars) {
  // Every subject emits exactly predicates {1, 2} once: the
  // characteristic-set formula is exact for the unbound-object star.
  rdf::Graph graph;
  for (rdf::TermId s = 1; s <= 10; ++s) {
    graph.AddTripleIds(s, 1, 20 + s);
    graph.AddTripleIds(s, 2, 40 + s);
  }
  graph.Finalize();
  CsetEstimator cset(graph);
  EXPECT_EQ(cset.num_characteristic_sets(), 1u);
  Query q = query::MakeStarQuery(V(0), {{B(1), V(1)}, {B(2), V(2)}});
  ASSERT_TRUE(cset.CanEstimate(q));
  EXPECT_NEAR(cset.EstimateCardinality(q), 10.0, 1e-9);
}

TEST(CsetTest, MultiplicityHandling) {
  // Subjects emit predicate 1 twice on average; occurrences/count = 2.
  rdf::Graph graph;
  for (rdf::TermId s = 1; s <= 5; ++s) {
    graph.AddTripleIds(s, 1, 10 + s);
    graph.AddTripleIds(s, 1, 20 + s);
  }
  graph.Finalize();
  CsetEstimator cset(graph);
  // Star-2 with both patterns on predicate 1, objects unbound:
  // per subject 2*2 = 4 combinations => 20 total (matches the ordered
  // tuple semantics of the executor).
  Query q = query::MakeStarQuery(V(0), {{B(1), V(1)}, {B(1), V(2)}});
  query::Executor executor(graph);
  EXPECT_NEAR(cset.EstimateCardinality(q), executor.Cardinality(q), 1e-9);
}

TEST(CsetTest, SupersetSetsContribute) {
  rdf::Graph graph;
  // 4 subjects with {1}, 3 with {1,2}.
  for (rdf::TermId s = 1; s <= 4; ++s) graph.AddTripleIds(s, 1, 50);
  for (rdf::TermId s = 5; s <= 7; ++s) {
    graph.AddTripleIds(s, 1, 50);
    graph.AddTripleIds(s, 2, 60);
  }
  graph.Finalize();
  CsetEstimator cset(graph);
  EXPECT_EQ(cset.num_characteristic_sets(), 2u);
  Query q1 = query::MakeStarQuery(V(0), {{B(1), V(1)}});
  EXPECT_NEAR(cset.EstimateCardinality(q1), 7.0, 1e-9);
  Query q12 = query::MakeStarQuery(V(0), {{B(1), V(1)}, {B(2), V(2)}});
  EXPECT_NEAR(cset.EstimateCardinality(q12), 3.0, 1e-9);
}

TEST(CsetTest, BoundObjectAppliesSelectivity) {
  rdf::Graph graph;
  for (rdf::TermId s = 1; s <= 8; ++s)
    graph.AddTripleIds(s, 1, 100 + (s % 4));  // 4 distinct objects
  graph.Finalize();
  CsetEstimator cset(graph);
  Query q = query::MakeStarQuery(V(0), {{B(1), B(101)}});
  // 8 subjects * (1/4 distinct objects) = 2 (and the true count is 2).
  EXPECT_NEAR(cset.EstimateCardinality(q), 2.0, 1e-9);
}

TEST(CsetTest, ChainEstimateIsReasonable) {
  rdf::Graph graph = lmkg::testing::MakeRandomGraph(30, 3, 300, 4);
  CsetEstimator cset(graph);
  Query q = query::MakeChainQuery({V(0), V(1), V(2)}, {B(1), B(2)});
  query::Executor executor(graph);
  double truth = executor.Cardinality(q);
  double est = cset.EstimateCardinality(q);
  EXPECT_GT(est, 0.0);
  // Textbook join estimate: same order of magnitude on a random graph.
  EXPECT_LT(util::QError(est, truth), 10.0);
}

TEST(CsetTest, RequiresBoundPredicates) {
  rdf::Graph graph = lmkg::testing::MakeRandomGraph(10, 2, 40, 5);
  CsetEstimator cset(graph);
  Query q = query::MakeStarQuery(V(0), {{V(1), V(2)}, {V(3), V(4)}});
  EXPECT_FALSE(cset.CanEstimate(q));
}

TEST(CsetTest, MemoryGrowsWithSetCount) {
  rdf::Graph small = lmkg::testing::MakeRandomGraph(10, 2, 30, 6);
  rdf::Graph large = lmkg::testing::MakeRandomGraph(200, 8, 2000, 6);
  EXPECT_GT(CsetEstimator(large).MemoryBytes(),
            CsetEstimator(small).MemoryBytes());
}

// --- SUMRDF ------------------------------------------------------------------

TEST(SumRdfTest, SinglePatternExpectationIsExact) {
  // For (?x p ?y) the bucket factors cancel: est = triple count of p.
  rdf::Graph graph = lmkg::testing::MakeRandomGraph(40, 4, 400, 7);
  SumRdfEstimator sumrdf(graph);
  for (rdf::TermId p = 1; p <= graph.num_predicates(); ++p) {
    Query q;
    q.patterns.push_back({V(0), B(p), V(1)});
    query::NormalizeVariables(&q);
    EXPECT_NEAR(sumrdf.EstimateCardinality(q),
                static_cast<double>(graph.PredicateCount(p)),
                graph.PredicateCount(p) * 1e-9 + 1e-9);
  }
}

TEST(SumRdfTest, StarAndChainProduceFiniteEstimates) {
  rdf::Graph graph = lmkg::testing::MakeRandomGraph(40, 4, 400, 8);
  SumRdfEstimator sumrdf(graph);
  Query star = query::MakeStarQuery(V(0), {{B(1), V(1)}, {B(2), V(2)}});
  Query chain = query::MakeChainQuery({V(0), V(1), V(2)}, {B(1), B(2)});
  EXPECT_TRUE(std::isfinite(sumrdf.EstimateCardinality(star)));
  EXPECT_TRUE(std::isfinite(sumrdf.EstimateCardinality(chain)));
  EXPECT_GE(sumrdf.EstimateCardinality(star), 0.0);
}

TEST(SumRdfTest, RejectsUnboundPredicates) {
  rdf::Graph graph = lmkg::testing::MakeRandomGraph(10, 2, 40, 9);
  SumRdfEstimator sumrdf(graph);
  Query q;
  q.patterns.push_back({V(0), V(1), V(2)});
  query::NormalizeVariables(&q);
  EXPECT_FALSE(sumrdf.CanEstimate(q));
}

TEST(SumRdfTest, FinerBucketsAreMoreAccurate) {
  rdf::Graph graph = lmkg::testing::MakeRandomGraph(60, 4, 500, 10);
  query::Executor executor(graph);
  SumRdfEstimator::Options coarse_opts;
  coarse_opts.target_buckets = 2;
  SumRdfEstimator coarse(graph, coarse_opts);
  SumRdfEstimator::Options fine_opts;
  fine_opts.target_buckets = 4096;
  SumRdfEstimator fine(graph, fine_opts);

  auto workload = [&] {
    sampling::WorkloadGenerator generator(graph);
    sampling::WorkloadGenerator::Options options;
    options.topology = Topology::kStar;
    options.query_size = 2;
    options.count = 40;
    options.seed = 3;
    return generator.Generate(options);
  }();
  ASSERT_GT(workload.size(), 10u);
  double coarse_err = 0, fine_err = 0;
  for (const auto& lq : workload) {
    coarse_err +=
        util::QError(coarse.EstimateCardinality(lq.query), lq.cardinality);
    fine_err +=
        util::QError(fine.EstimateCardinality(lq.query), lq.cardinality);
  }
  EXPECT_LE(fine_err, coarse_err * 1.2);
}

// --- WanderJoin ------------------------------------------------------------------

TEST(WanderJoinTest, NearlyUnbiasedWithManyWalks) {
  rdf::Graph graph = lmkg::testing::MakeRandomGraph(25, 3, 220, 11);
  query::Executor executor(graph);
  WanderJoinEstimator::Options options;
  options.num_walks = 20000;
  options.seed = 1;
  WanderJoinEstimator wj(graph, options);
  Query star = query::MakeStarQuery(V(0), {{B(1), V(1)}, {B(2), V(2)}});
  double truth = executor.Cardinality(star);
  ASSERT_GT(truth, 0.0);
  EXPECT_NEAR(wj.EstimateCardinality(star), truth, truth * 0.15);

  Query chain = query::MakeChainQuery({V(0), V(1), V(2)}, {B(1), B(2)});
  truth = executor.Cardinality(chain);
  ASSERT_GT(truth, 0.0);
  EXPECT_NEAR(wj.EstimateCardinality(chain), truth, truth * 0.15);
}

TEST(WanderJoinTest, ZeroForImpossibleQuery) {
  rdf::Graph graph;
  graph.AddTripleIds(1, 1, 2);
  graph.AddTripleIds(3, 2, 4);
  graph.Finalize();
  WanderJoinEstimator wj(graph);
  // Chain 1 -p1-> x -p2-> y is impossible (2 has no out-edges).
  Query q = query::MakeChainQuery({B(1), V(0), V(1)}, {B(1), B(2)});
  EXPECT_DOUBLE_EQ(wj.EstimateCardinality(q), 0.0);
}

TEST(WanderJoinTest, HandlesBoundTerms) {
  rdf::Graph graph = lmkg::testing::MakeRandomGraph(25, 3, 220, 12);
  query::Executor executor(graph);
  WanderJoinEstimator::Options options;
  options.num_walks = 20000;
  options.seed = 2;
  WanderJoinEstimator wj(graph, options);
  // Find a star-2 with a bound object that actually matches something.
  sampling::WorkloadGenerator generator(graph);
  sampling::WorkloadGenerator::Options wopts;
  wopts.topology = Topology::kStar;
  wopts.query_size = 2;
  wopts.count = 5;
  wopts.unbind_object_prob = 0.0;  // keep objects bound
  wopts.seed = 4;
  auto workload = generator.Generate(wopts);
  ASSERT_FALSE(workload.empty());
  for (const auto& lq : workload) {
    double est = wj.EstimateCardinality(lq.query);
    EXPECT_LT(util::QError(est, lq.cardinality), 2.0);
  }
}

// --- JSUB ------------------------------------------------------------------

TEST(JsubTest, UnbiasedButUpperBoundFlavored) {
  rdf::Graph graph = lmkg::testing::MakeRandomGraph(25, 3, 220, 13);
  query::Executor executor(graph);
  JsubEstimator::Options options;
  options.num_walks = 40000;
  options.seed = 3;
  JsubEstimator jsub(graph, options);
  Query star = query::MakeStarQuery(V(0), {{B(1), V(1)}, {B(2), V(2)}});
  double truth = executor.Cardinality(star);
  ASSERT_GT(truth, 0.0);
  // Unbiased in expectation (generous tolerance: higher variance).
  EXPECT_NEAR(jsub.EstimateCardinality(star), truth, truth * 0.35);
}

TEST(JsubTest, MemoryIsFanoutTables) {
  rdf::Graph graph = lmkg::testing::MakeRandomGraph(25, 3, 220, 14);
  JsubEstimator jsub(graph);
  EXPECT_GT(jsub.MemoryBytes(), 0u);
  EXPECT_LT(jsub.MemoryBytes(), 10000u);
}

// --- IMPR ------------------------------------------------------------------

TEST(ImprTest, RoughlyUnbiasedOnTinyGraph) {
  rdf::Graph graph = lmkg::testing::MakeRandomGraph(12, 2, 60, 15);
  query::Executor executor(graph);
  ImprEstimator::Options options;
  options.num_walks = 60000;
  options.seed = 4;
  ImprEstimator impr(graph, options);
  Query star = query::MakeStarQuery(V(0), {{B(1), V(1)}, {B(2), V(2)}});
  double truth = executor.Cardinality(star);
  ASSERT_GT(truth, 0.0);
  // IMPR has far higher variance than WJ (that is its role in the
  // paper's figures); accept a wide band around the truth.
  double est = impr.EstimateCardinality(star);
  EXPECT_GT(est, truth * 0.5);
  EXPECT_LT(est, truth * 2.0);
}

TEST(ImprTest, FiniteOnChains) {
  rdf::Graph graph = lmkg::testing::MakeRandomGraph(12, 2, 60, 16);
  ImprEstimator impr(graph);
  Query chain = query::MakeChainQuery({V(0), V(1), V(2)}, {B(1), B(2)});
  double est = impr.EstimateCardinality(chain);
  EXPECT_TRUE(std::isfinite(est));
  EXPECT_GE(est, 0.0);
}

// --- MSCN ------------------------------------------------------------------

class MscnTest : public ::testing::Test {
 protected:
  MscnTest() : graph_(lmkg::testing::MakeRandomGraph(40, 5, 500, 17)) {}

  std::vector<sampling::LabeledQuery> MixedWorkload(size_t count,
                                                    uint64_t seed) {
    sampling::WorkloadGenerator generator(graph_);
    std::vector<sampling::LabeledQuery> all;
    for (Topology t : {Topology::kStar, Topology::kChain}) {
      sampling::WorkloadGenerator::Options options;
      options.topology = t;
      options.query_size = 2;
      options.count = count / 2;
      options.seed = seed + (t == Topology::kChain ? 1 : 0);
      auto part = generator.Generate(options);
      all.insert(all.end(), part.begin(), part.end());
    }
    return all;
  }

  rdf::Graph graph_;
};

TEST_F(MscnTest, TrainsAndLossDecreases) {
  MscnConfig config;
  config.num_samples = 0;
  config.hidden_dim = 32;
  config.epochs = 30;
  config.seed = 5;
  MscnEstimator mscn(graph_, config);
  auto train = MixedWorkload(300, 61);
  ASSERT_GT(train.size(), 100u);
  auto stats = mscn.Train(train);
  EXPECT_LT(stats.epoch_losses.back(), stats.epoch_losses.front());
  EXPECT_EQ(mscn.name(), "mscn-0");
}

TEST_F(MscnTest, SampleBitmapsImproveOverNoSamples) {
  auto train = MixedWorkload(400, 62);
  auto test = MixedWorkload(100, 63);
  ASSERT_GT(test.size(), 30u);
  auto median_qerror = [&](MscnEstimator& model) {
    std::vector<double> qerrors;
    for (const auto& lq : test)
      qerrors.push_back(util::QError(model.EstimateCardinality(lq.query),
                                     lq.cardinality));
    return util::QErrorStats::Compute(std::move(qerrors)).median;
  };
  MscnConfig c0;
  c0.num_samples = 0;
  c0.hidden_dim = 32;
  c0.epochs = 25;
  c0.seed = 6;
  MscnEstimator mscn0(graph_, c0);
  mscn0.Train(train);
  MscnConfig c1 = c0;
  c1.num_samples = 200;
  MscnEstimator mscn1(graph_, c1);
  mscn1.Train(train);
  double m0 = median_qerror(mscn0);
  double m1 = median_qerror(mscn1);
  // The bitmap variant should not be (much) worse — in the paper
  // MSCN-1k beats MSCN-0 consistently.
  EXPECT_LE(m1, m0 * 1.5);
  EXPECT_LT(m1, 20.0);
  EXPECT_EQ(mscn1.name(), "mscn-200");
}

TEST_F(MscnTest, PatternWidthIncludesBitmap) {
  MscnConfig config;
  config.num_samples = 64;
  MscnEstimator mscn(graph_, config);
  EXPECT_EQ(mscn.pattern_width(), 6u + 64u);
  EXPECT_GT(mscn.MemoryBytes(), 0u);
}

TEST_F(MscnTest, EstimateBeforeTrainAborts) {
  MscnConfig config;
  MscnEstimator mscn(graph_, config);
  Query q = query::MakeStarQuery(V(0), {{B(1), V(1)}, {B(2), V(2)}});
  EXPECT_DEATH(mscn.EstimateCardinality(q), "before Train");
}

// --- IndependenceEstimator ----------------------------------------------------

TEST(IndependenceTest, ExactOnSinglePatterns) {
  rdf::Graph graph = lmkg::testing::MakeRandomGraph(20, 4, 150, 31);
  IndependenceEstimator indep(graph);
  query::Executor executor(graph);
  for (rdf::TermId p = 1; p <= graph.num_predicates(); ++p) {
    Query q = query::MakeStarQuery(V(0), {{B(p), V(1)}});
    EXPECT_DOUBLE_EQ(indep.EstimateCardinality(q), executor.Cardinality(q));
  }
}

TEST(IndependenceTest, UnderestimatesPerfectlyCorrelatedPredicates) {
  // Books: every hasAuthor subject also has a genre (perfect predicate
  // co-occurrence); many unrelated nodes inflate the variable domain. The
  // independence product divides by the full domain and collapses.
  rdf::Graph graph;
  for (int b = 0; b < 20; ++b) {
    std::string book = "book/" + std::to_string(b);
    graph.AddTriple(book, "hasAuthor", "author/" + std::to_string(b % 4));
    graph.AddTriple(book, "genre", "genre/" + std::to_string(b % 3));
  }
  for (int n = 0; n < 200; ++n)
    graph.AddTriple("node/" + std::to_string(n), "link",
                    "node/" + std::to_string((n + 1) % 200));
  graph.Finalize();

  rdf::TermId has_author = *graph.dict().FindPredicate("hasAuthor");
  rdf::TermId genre = *graph.dict().FindPredicate("genre");
  Query q = query::MakeStarQuery(V(0), {{B(has_author), V(1)},
                                        {B(genre), V(2)}});
  query::Executor executor(graph);
  double exact = executor.Cardinality(q);
  ASSERT_GE(exact, 20.0);  // every book matches
  IndependenceEstimator indep(graph);
  double est = indep.EstimateCardinality(q);
  // The motivating failure (paper SI/SII): at least 2x under.
  EXPECT_LE(est * 2.0, exact) << "est=" << est << " exact=" << exact;
}

TEST(IndependenceTest, JoinUniformityDividesByDomain) {
  rdf::Graph graph = lmkg::testing::MakeRandomGraph(25, 3, 200, 33);
  IndependenceEstimator indep(graph);
  // A chain (?0 p1 ?1)(?1 p2 ?2): estimate = c1 * c2 / num_nodes.
  Query chain = query::MakeChainQuery({V(0), V(1), V(2)}, {B(1), B(2)});
  Query first = query::MakeStarQuery(V(0), {{B(1), V(1)}});
  Query second = query::MakeStarQuery(V(0), {{B(2), V(1)}});
  double c1 = indep.EstimateCardinality(first);
  double c2 = indep.EstimateCardinality(second);
  EXPECT_NEAR(indep.EstimateCardinality(chain),
              c1 * c2 / static_cast<double>(graph.num_nodes()), 1e-9);
}

TEST(IndependenceTest, HandlesPredicateVariables) {
  rdf::Graph graph = lmkg::testing::MakeRandomGraph(15, 3, 100, 34);
  IndependenceEstimator indep(graph);
  Query q;
  query::TriplePattern a;
  a.s = V(0);
  a.p = V(1);
  a.o = V(2);
  query::TriplePattern b;
  b.s = V(2);
  b.p = V(1);  // shared predicate variable across patterns
  b.o = V(3);
  q.patterns = {a, b};
  query::NormalizeVariables(&q);
  double est = indep.EstimateCardinality(q);
  double triples = static_cast<double>(graph.num_triples());
  // t^2 / (nodes * predicates): one shared node var, one shared pred var.
  EXPECT_NEAR(est,
              triples * triples / (graph.num_nodes() *
                                   static_cast<double>(
                                       graph.num_predicates())),
              est * 1e-9);
}

}  // namespace
}  // namespace lmkg::baselines

