// Executor-feedback loop tests: the FeedbackCollector's bounded
// never-blocking store and decayed q-error tracking, the deactivation
// list (deactivate -> serve from fallback -> probe -> reactivate), the
// training-set blender, AdaptiveLmkg's feedback ingestion and per-combo
// model snapshots, the executor truth sink, the outlier buffer's online
// insert + mutation hook, and the end-to-end incremental lifecycle
// cycle. The concurrent-stress test targets the TSan CI leg.
#include "serving/feedback_collector.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <functional>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include "core/adaptive.h"
#include "core/outlier_buffer.h"
#include "core/single_pattern.h"
#include "query/executor.h"
#include "query/fingerprint.h"
#include "sampling/blend.h"
#include "sampling/workload.h"
#include "serving/estimator_service.h"
#include "serving/model_lifecycle.h"
#include "test_util.h"
#include "util/check.h"

namespace lmkg::serving {
namespace {

using lmkg::testing::MakeRandomGraph;
using query::Query;
using query::Topology;

// An estimator whose answer is a settable function of the query —
// lets a test script "model always 100x off" / "fallback always exact"
// without training anything.
class ScriptedEstimator : public core::CardinalityEstimator {
 public:
  using Fn = std::function<double(const Query&)>;
  explicit ScriptedEstimator(Fn fn) : fn_(std::move(fn)) {}
  explicit ScriptedEstimator(double constant)
      : fn_([constant](const Query&) { return constant; }) {}

  double EstimateCardinality(const Query& q) override { return fn_(q); }
  bool CanEstimate(const Query&) const override { return true; }
  std::string name() const override { return "scripted"; }
  size_t MemoryBytes() const override { return 0; }

  void set_fn(Fn fn) { fn_ = std::move(fn); }

 private:
  Fn fn_;
};

// Generated star workload with duplicate fingerprints removed — the
// tests below count entries/pairs per DISTINCT fingerprint, and the
// generator may emit the same canonical query twice.
std::vector<sampling::LabeledQuery> StarWorkload(const rdf::Graph& graph,
                                                 int size, size_t count,
                                                 uint64_t seed) {
  sampling::WorkloadGenerator generator(graph);
  sampling::WorkloadGenerator::Options options;
  options.topology = Topology::kStar;
  options.query_size = size;
  options.count = count;
  options.seed = seed;
  auto labeled = generator.Generate(options);
  std::vector<sampling::LabeledQuery> distinct;
  std::vector<query::Fingerprint> seen;
  for (auto& lq : labeled) {
    const query::Fingerprint fp = query::ComputeFingerprint(lq.query);
    if (std::find(seen.begin(), seen.end(), fp) != seen.end()) continue;
    seen.push_back(fp);
    distinct.push_back(std::move(lq));
  }
  return distinct;
}

class FeedbackCollectorTest : public ::testing::Test {
 protected:
  FeedbackCollectorTest() : graph_(MakeRandomGraph(60, 6, 700, 11)) {
    auto labeled = StarWorkload(graph_, 2, 24, 5);
    LMKG_CHECK(labeled.size() >= 12);
    for (auto& lq : labeled) {
      queries_.push_back(lq.query);
      truths_.push_back(lq.cardinality > 0 ? lq.cardinality : 1.0);
    }
  }

  rdf::Graph graph_;
  std::vector<Query> queries_;
  std::vector<double> truths_;
  ScriptedEstimator exact_fallback_{[this](const Query& q) {
    for (size_t i = 0; i < queries_.size(); ++i)
      if (query::ComputeFingerprint(queries_[i]) ==
          query::ComputeFingerprint(q))
        return truths_[i];
    return 1.0;
  }};
};

TEST_F(FeedbackCollectorTest, EmptyDrainReturnsNothing) {
  FeedbackCollector collector(&exact_fallback_, FeedbackConfig{});
  EXPECT_TRUE(collector.DrainTrainingPairs().empty());
  const FeedbackStatsSnapshot stats = collector.Stats();
  EXPECT_EQ(stats.truths_recorded, 0u);
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.pairs_drained, 0u);
  EXPECT_EQ(stats.deactivated, 0u);
  EXPECT_FALSE(collector.has_probe());
  // Nothing deactivated: the hot-path check is a single relaxed load.
  EXPECT_FALSE(
      collector.IsDeactivated(query::ComputeFingerprint(queries_[0])));
}

TEST_F(FeedbackCollectorTest, CapacityDropsAreCountedNeverGrowing) {
  FeedbackConfig config;
  config.capacity = 3;
  config.sub_shards = 1;  // deterministic: one shard sees every insert
  FeedbackCollector collector(&exact_fallback_, config);
  for (size_t i = 0; i < queries_.size(); ++i)
    collector.Record(queries_[i], truths_[i], truths_[i] * 2.0);

  const FeedbackStatsSnapshot stats = collector.Stats();
  EXPECT_EQ(stats.entries, 3u);  // store never grows past the budget
  EXPECT_EQ(stats.truths_recorded, queries_.size());
  // Each over-capacity query drops twice: NoteEstimate and RecordTruth.
  EXPECT_EQ(stats.dropped, 2 * (queries_.size() - 3));
  // The retained entries still drained normally.
  EXPECT_EQ(collector.DrainTrainingPairs().size(), 3u);
}

TEST_F(FeedbackCollectorTest, PairRingKeepsNewestTruths) {
  FeedbackConfig config;
  config.max_pairs_per_entry = 2;
  FeedbackCollector collector(&exact_fallback_, config);
  // Four truths for ONE fingerprint: the bounded ring must retain the
  // newest two (10 and 11 drop out as 12/13 overwrite round-robin).
  for (double truth : {10.0, 11.0, 12.0, 13.0})
    collector.Record(queries_[0], truth, truth);

  auto pairs = collector.DrainTrainingPairs();
  ASSERT_EQ(pairs.size(), 2u);
  std::vector<double> drained = {pairs[0].cardinality,
                                 pairs[1].cardinality};
  std::sort(drained.begin(), drained.end());
  EXPECT_DOUBLE_EQ(drained[0], 12.0);
  EXPECT_DOUBLE_EQ(drained[1], 13.0);
  EXPECT_EQ(collector.Stats().pairs_drained, 2u);
  // Drained pairs arrive classified, ready for IngestFeedback.
  EXPECT_EQ(pairs[0].topology, Topology::kStar);
  EXPECT_EQ(pairs[0].size, 2);
}

TEST_F(FeedbackCollectorTest, DeactivatesRoutesToFallbackAndReactivates) {
  FeedbackConfig config;
  config.min_observations = 4;
  FeedbackCollector collector(&exact_fallback_, config);
  const Query& q = queries_[0];
  const double truth = truths_[0];
  const query::Fingerprint fp = query::ComputeFingerprint(q);

  // Phase 1: the model keeps serving estimates 100x off while the
  // fallback is exact -> a clear loss past the hysteresis band.
  for (int i = 0; i < 6; ++i)
    collector.Record(q, truth, truth * 100.0, /*from_fallback=*/false);
  DeactivationReport report = collector.UpdateDeactivation();
  EXPECT_EQ(report.deactivated, 1u);
  EXPECT_EQ(report.total_deactivated, 1u);
  EXPECT_TRUE(collector.IsDeactivated(fp));
  EXPECT_EQ(collector.Stats().deactivated, 1u);
  // Deactivated traffic is served from the collector's fallback.
  EXPECT_DOUBLE_EQ(collector.FallbackEstimate(q), truth);

  // While deactivated, the entry's pairs stay OUT of the training mix.
  EXPECT_TRUE(collector.DrainTrainingPairs().empty());

  // Phase 2: a retrain fixed the model; the probe now answers exactly.
  // Each recorded truth probes it, decaying the bad history away until
  // the rolling q-error crosses back under the reactivation band.
  collector.SetProbe(std::make_unique<ScriptedEstimator>(truth));
  ASSERT_TRUE(collector.has_probe());
  bool reactivated = false;
  for (int i = 0; i < 64 && !reactivated; ++i) {
    collector.RecordTruth(q, truth);
    reactivated = collector.UpdateDeactivation().reactivated > 0;
  }
  EXPECT_TRUE(reactivated);
  EXPECT_FALSE(collector.IsDeactivated(fp));
  EXPECT_EQ(collector.Stats().deactivated, 0u);
  EXPECT_GT(collector.Stats().probes, 0u);
  // Reactivated: its accumulated pairs are back in the mix.
  EXPECT_FALSE(collector.DrainTrainingPairs().empty());
}

TEST_F(FeedbackCollectorTest, FallbackServedEstimatesDoNotScoreTheModel) {
  FeedbackConfig config;
  config.min_observations = 4;
  FeedbackCollector collector(&exact_fallback_, config);
  const Query& q = queries_[1];
  const double truth = truths_[1];
  // Terrible estimates, but flagged from_fallback: the MODEL's rolling
  // error must stay unobserved, so deactivation can never trigger.
  for (int i = 0; i < 12; ++i)
    collector.Record(q, truth, truth * 1000.0, /*from_fallback=*/true);
  DeactivationReport report = collector.UpdateDeactivation();
  EXPECT_EQ(report.deactivated, 0u);
  EXPECT_FALSE(collector.IsDeactivated(query::ComputeFingerprint(q)));
  // Every truth lacked a model estimate to score.
  EXPECT_EQ(collector.Stats().unmatched_truths, 12u);
}

// The TSan target: executor threads hammer Record/RecordTruth while a
// lifecycle thread concurrently drains pairs, refreshes the deactivation
// list, and swaps the probe. The collector must never block, never
// crash, and keep its counters coherent.
TEST_F(FeedbackCollectorTest, ConcurrentFeedAndDrainIsRaceFree) {
  FeedbackConfig config;
  config.capacity = 64;
  FeedbackCollector collector(&exact_fallback_, config);

  constexpr int kRounds = 200;
  std::atomic<bool> stop{false};
  std::vector<std::thread> executors;
  for (int t = 0; t < 4; ++t) {
    executors.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        const size_t i = (t + round) % queries_.size();
        collector.Record(queries_[i], truths_[i], truths_[i] * 3.0);
        (void)collector.IsDeactivated(
            query::ComputeFingerprint(queries_[i]));
      }
    });
  }
  std::thread lifecycle([&] {
    size_t drained = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      drained += collector.DrainTrainingPairs().size();
      (void)collector.UpdateDeactivation();
      collector.SetProbe(std::make_unique<ScriptedEstimator>(1.0));
      collector.UpdateProbe([](core::CardinalityEstimator* probe) {
        if (probe != nullptr) (void)probe->name();
      });
      std::this_thread::yield();
    }
  });
  for (auto& t : executors) t.join();
  stop.store(true, std::memory_order_relaxed);
  lifecycle.join();

  const FeedbackStatsSnapshot stats = collector.Stats();
  // Every record attempt is accounted for: it either landed or was
  // dropped by a contended try-lock / full store — never lost silently.
  EXPECT_EQ(stats.truths_recorded, 4u * kRounds);
  EXPECT_LE(stats.entries, config.capacity + config.sub_shards);
}

// --- executor truth sink -----------------------------------------------------

TEST_F(FeedbackCollectorTest, ExecutorSinkFeedsExactCountsOnly) {
  FeedbackCollector collector(&exact_fallback_, FeedbackConfig{});
  query::Executor executor(graph_);
  executor.SetTruthSink(MakeExecutorTruthSink(&collector));

  const uint64_t exact = executor.Count(queries_[0]);
  EXPECT_EQ(collector.Stats().truths_recorded, 1u);
  // A limited count is a lower bound, not the truth — it must not feed.
  (void)executor.Count(queries_[0], /*limit=*/1);
  EXPECT_EQ(collector.Stats().truths_recorded, 1u);

  auto pairs = collector.DrainTrainingPairs();
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_DOUBLE_EQ(pairs[0].cardinality, static_cast<double>(exact));
}

// --- deactivated routing through the service ---------------------------------

TEST_F(FeedbackCollectorTest, ServiceRoutesDeactivatedPastTheCache) {
  FeedbackConfig config;
  config.min_observations = 4;
  FeedbackCollector collector(&exact_fallback_, config);

  const Query& q = queries_[2];
  const double truth = truths_[2];
  const double model_value = truth * 100.0;  // hopeless vs exact fallback

  ServiceConfig service_config;
  service_config.cache_capacity = 256;
  service_config.feedback = &collector;
  std::vector<std::unique_ptr<core::CardinalityEstimator>> replicas;
  replicas.push_back(std::make_unique<ScriptedEstimator>(model_value));
  EstimatorService service(std::move(replicas), service_config);

  // Model path: badly served (and cached) estimates, exact truths.
  for (int i = 0; i < 6; ++i) {
    EXPECT_DOUBLE_EQ(service.Estimate(q), model_value);
    collector.RecordTruth(q, truth);
  }
  EXPECT_GT(collector.Stats().estimates_noted, 0u);
  ASSERT_EQ(collector.UpdateDeactivation().deactivated, 1u);

  // Deactivated: served from the fallback, bypassing the cache in both
  // directions — the resident model-value entry must NOT hit, with no
  // epoch bump needed for the flip.
  const uint64_t epoch = service.epoch();
  for (int i = 0; i < 3; ++i)
    EXPECT_DOUBLE_EQ(service.Estimate(q), truth);
  EXPECT_EQ(service.epoch(), epoch);
  EXPECT_GE(service.Stats().feedback_fallback_served, 3u);

  // Reactivation flips the route straight back to the model.
  collector.SetProbe(std::make_unique<ScriptedEstimator>(truth));
  bool reactivated = false;
  for (int i = 0; i < 64 && !reactivated; ++i) {
    collector.RecordTruth(q, truth);
    reactivated = collector.UpdateDeactivation().reactivated > 0;
  }
  ASSERT_TRUE(reactivated);
  EXPECT_DOUBLE_EQ(service.Estimate(q), model_value);
}

// --- EstimatorService::WithReplica -------------------------------------------

TEST(WithReplicaTest, InPlaceMutationServesAfterEpochBump) {
  ServiceConfig config;
  config.cache_capacity = 64;
  std::vector<std::unique_ptr<core::CardinalityEstimator>> replicas;
  replicas.push_back(std::make_unique<ScriptedEstimator>(7.0));
  EstimatorService service(std::move(replicas), config);

  rdf::Graph graph = MakeRandomGraph(30, 4, 200, 3);
  auto labeled = StarWorkload(graph, 2, 4, 9);
  ASSERT_FALSE(labeled.empty());
  const Query q = labeled[0].query;

  EXPECT_DOUBLE_EQ(service.Estimate(q), 7.0);  // now cached at epoch 0
  service.WithReplica(0, [](core::CardinalityEstimator* replica) {
    auto* scripted = dynamic_cast<ScriptedEstimator*>(replica);
    ASSERT_NE(scripted, nullptr);
    scripted->set_fn([](const Query&) { return 8.0; });
  });
  service.AdvanceEpoch();
  // The mutated replica serves, and the epoch bump invalidated the
  // pre-mutation cache entry.
  EXPECT_DOUBLE_EQ(service.Estimate(q), 8.0);
}

// --- sampling::BlendTrainingSets ---------------------------------------------

class BlendTest : public ::testing::Test {
 protected:
  BlendTest() : graph_(MakeRandomGraph(40, 5, 400, 17)) {}

  sampling::LabeledQuery Labeled(const Query& q, double cardinality) {
    sampling::LabeledQuery lq;
    lq.query = q;
    lq.cardinality = cardinality;
    lq.topology = Topology::kStar;
    lq.size = 2;
    return lq;
  }

  rdf::Graph graph_;
};

TEST_F(BlendTest, DedupesReplicatesAndDropsCollidingSynthetic) {
  auto pool = StarWorkload(graph_, 2, 8, 21);
  ASSERT_GE(pool.size(), 4u);

  // Feedback: q0 twice (stale 5.0 then fresh 50.0) and q1 once.
  std::vector<sampling::LabeledQuery> feedback = {
      Labeled(pool[0].query, 5.0), Labeled(pool[1].query, 7.0),
      Labeled(pool[0].query, 50.0)};
  // Synthetic: q0 again (must be dropped — the executed truth wins) and
  // two untouched queries.
  std::vector<sampling::LabeledQuery> synthetic = {
      Labeled(pool[0].query, 6.0), Labeled(pool[2].query, 9.0),
      Labeled(pool[3].query, 11.0)};

  sampling::BlendOptions options;
  options.replicate_feedback = 3;
  auto blended = sampling::BlendTrainingSets(feedback, synthetic, options);

  // 2 deduped feedback pairs x3 replicas + 2 surviving synthetic pairs.
  ASSERT_EQ(blended.size(), 2u * 3u + 2u);
  size_t q0 = 0, q1 = 0, stale = 0;
  const auto fp0 = query::ComputeFingerprint(pool[0].query);
  for (const auto& lq : blended) {
    if (query::ComputeFingerprint(lq.query) == fp0) {
      ++q0;
      EXPECT_DOUBLE_EQ(lq.cardinality, 50.0);  // latest truth won
    }
    if (lq.cardinality == 7.0) ++q1;
    if (lq.cardinality == 5.0 || lq.cardinality == 6.0) ++stale;
  }
  EXPECT_EQ(q0, 3u);
  EXPECT_EQ(q1, 3u);
  EXPECT_EQ(stale, 0u);  // neither the stale truth nor the collided label

  // The shuffle is deterministic: same inputs, same order.
  auto again = sampling::BlendTrainingSets(feedback, synthetic, options);
  ASSERT_EQ(again.size(), blended.size());
  for (size_t i = 0; i < blended.size(); ++i)
    EXPECT_DOUBLE_EQ(again[i].cardinality, blended[i].cardinality);
}

TEST_F(BlendTest, MaxFeedbackCapKeepsNewest) {
  auto pool = StarWorkload(graph_, 2, 8, 23);
  ASSERT_GE(pool.size(), 3u);
  std::vector<sampling::LabeledQuery> feedback = {
      Labeled(pool[0].query, 1.0), Labeled(pool[1].query, 2.0),
      Labeled(pool[2].query, 3.0)};
  sampling::BlendOptions options;
  options.replicate_feedback = 1;
  options.max_feedback = 2;
  auto blended = sampling::BlendTrainingSets(feedback, {}, options);
  ASSERT_EQ(blended.size(), 2u);
  // Newest-first priority under the cap: the oldest pair is the one cut.
  for (const auto& lq : blended) EXPECT_NE(lq.cardinality, 1.0);
}

// --- core::OutlierBuffer online insert ---------------------------------------

TEST_F(BlendTest, OutlierBufferInsertKeepsTopAndFiresHook) {
  auto pool = StarWorkload(graph_, 2, 8, 27);
  ASSERT_GE(pool.size(), 4u);
  ScriptedEstimator inner(0.0);
  core::OutlierBuffer buffer(&inner, /*capacity=*/2);
  size_t hook_fires = 0;
  buffer.SetMutationHook([&] { ++hook_fires; });

  EXPECT_TRUE(buffer.Insert(pool[0].query, 10.0));
  EXPECT_TRUE(buffer.Insert(pool[1].query, 20.0));
  EXPECT_EQ(hook_fires, 2u);
  // Full, newcomer smaller than the smallest resident: no-op, no hook.
  EXPECT_FALSE(buffer.Insert(pool[2].query, 5.0));
  EXPECT_EQ(hook_fires, 2u);
  // Full, newcomer beats the smallest: evict 10.0, keep the top two.
  EXPECT_TRUE(buffer.Insert(pool[3].query, 30.0));
  EXPECT_EQ(hook_fires, 3u);
  EXPECT_EQ(buffer.buffered(), 2u);
  EXPECT_DOUBLE_EQ(buffer.EstimateCardinality(pool[1].query), 20.0);
  EXPECT_DOUBLE_EQ(buffer.EstimateCardinality(pool[3].query), 30.0);
  EXPECT_DOUBLE_EQ(buffer.EstimateCardinality(pool[0].query), 0.0);

  // Re-inserting an existing key refreshes in place (hook iff changed).
  EXPECT_TRUE(buffer.Insert(pool[1].query, 25.0));
  EXPECT_FALSE(buffer.Insert(pool[1].query, 25.0));
  EXPECT_EQ(hook_fires, 4u);
  EXPECT_DOUBLE_EQ(buffer.EstimateCardinality(pool[1].query), 25.0);
}

// --- AdaptiveLmkg: feedback ingestion + per-combo snapshots ------------------

class AdaptiveFeedbackTest : public ::testing::Test {
 protected:
  AdaptiveFeedbackTest() : graph_(MakeRandomGraph(40, 5, 400, 23)) {}

  core::AdaptiveLmkgConfig SmallConfig() {
    core::AdaptiveLmkgConfig config;
    config.s_config.hidden_dim = 16;
    config.s_config.epochs = 4;
    config.s_config.dropout = 0.0;
    config.train_queries = 80;
    config.initial_combos = {{Topology::kStar, 2}};
    config.monitor.min_observations = 1000;  // keep Adapt pool-stable
    config.feedback_min_pairs = 8;
    config.feedback_refresh_queries = 40;
    config.seed = 3;
    return config;
  }

  rdf::Graph graph_;
};

TEST_F(AdaptiveFeedbackTest, AdaptRetrainsComboFromIngestedFeedback) {
  core::AdaptiveLmkg model(graph_, SmallConfig());
  auto before_pairs = StarWorkload(graph_, 2, 12, 31);
  ASSERT_GE(before_pairs.size(), 8u);

  // Below the threshold: pairs stay pending, nothing retrains.
  std::vector<sampling::LabeledQuery> few(before_pairs.begin(),
                                          before_pairs.begin() + 4);
  model.IngestFeedback(few);
  EXPECT_EQ(model.pending_feedback_pairs(), 4u);
  EXPECT_TRUE(model.Adapt().updated.empty());
  EXPECT_EQ(model.pending_feedback_pairs(), 4u);

  // Over the threshold: the star-2 model retrains in place and the
  // pending buffer empties.
  model.IngestFeedback(before_pairs);
  auto report = model.Adapt();
  ASSERT_EQ(report.updated.size(), 1u);
  EXPECT_EQ(report.updated[0].topology, Topology::kStar);
  EXPECT_EQ(report.updated[0].size, 2);
  EXPECT_TRUE(report.created.empty());
  EXPECT_TRUE(report.dropped.empty());
  EXPECT_EQ(model.pending_feedback_pairs(), 0u);

  // Size-1 pairs are answered exactly — never queued for training.
  auto singles = StarWorkload(graph_, 1, 4, 37);
  model.IngestFeedback(singles);
  EXPECT_EQ(model.pending_feedback_pairs(), 0u);
}

TEST_F(AdaptiveFeedbackTest, PerComboSnapshotRoundTripsExactly) {
  core::AdaptiveLmkg donor(graph_, SmallConfig());
  const core::AdaptiveLmkg::Combo combo{Topology::kStar, 2};

  std::ostringstream blob;
  ASSERT_TRUE(donor.SaveModel(combo, blob).ok());

  core::AdaptiveLmkgConfig target_config = SmallConfig();
  target_config.initial_combos.clear();
  core::AdaptiveLmkg target(graph_, target_config);
  ASSERT_FALSE(target.Covers(combo));
  std::istringstream in(blob.str());
  ASSERT_TRUE(target.LoadModel(combo, in).ok());
  EXPECT_TRUE(target.Covers(combo));

  for (auto& lq : StarWorkload(graph_, 2, 12, 41))
    EXPECT_DOUBLE_EQ(target.EstimateCardinality(lq.query),
                     donor.EstimateCardinality(lq.query));

  // A combo without a model cannot snapshot; garbage cannot load.
  std::ostringstream missing;
  EXPECT_FALSE(
      donor.SaveModel({Topology::kChain, 3}, missing).ok());
  std::istringstream garbage("not a combo snapshot");
  EXPECT_FALSE(target.LoadModel(combo, garbage).ok());
}

// --- end-to-end: lifecycle drains feedback and swaps incrementally -----------

TEST_F(AdaptiveFeedbackTest, LifecycleFeedbackCycleSwapsIncrementally) {
  core::AdaptiveLmkg shadow(graph_, SmallConfig());
  core::IndependenceEstimator fallback(graph_);
  FeedbackCollector collector(&fallback, FeedbackConfig{});

  ServiceConfig service_config;
  service_config.cache_capacity = 256;
  service_config.workload_tap_capacity = 64;
  service_config.feedback = &collector;
  auto factory = MakeAdaptiveReplicaFactory(graph_, SmallConfig());
  std::ostringstream seed_blob;
  ASSERT_TRUE(shadow.Save(seed_blob).ok());
  std::vector<std::unique_ptr<core::CardinalityEstimator>> replicas;
  replicas.push_back(factory(seed_blob.str()));
  EstimatorService service(std::move(replicas), service_config);

  ModelLifecycleConfig lifecycle_config;
  lifecycle_config.background = false;
  lifecycle_config.min_samples_per_cycle = 1000;  // only feedback triggers
  lifecycle_config.feedback = &collector;
  ModelLifecycle lifecycle(&service, &shadow, factory, lifecycle_config);

  // Serve + execute a star-2 workload: estimates are noted in the
  // collector, truths flow back as if from the executor.
  auto labeled = StarWorkload(graph_, 2, 16, 47);
  ASSERT_GE(labeled.size(), 8u);
  for (const auto& lq : labeled) {
    (void)service.Estimate(lq.query);
    collector.RecordTruth(lq.query, lq.cardinality);
  }

  LifecycleReport report = lifecycle.RunOnce();
  EXPECT_GE(report.feedback_pairs, 8u);
  ASSERT_EQ(report.adapt.updated.size(), 1u);
  EXPECT_TRUE(report.adapt.created.empty());
  EXPECT_TRUE(report.swapped);
  // Only weights changed: the swap shipped just the retrained combo,
  // loaded into the live replica in place.
  EXPECT_TRUE(report.incremental);
  EXPECT_EQ(lifecycle.incremental_swaps(), 1u);
  EXPECT_EQ(service.epoch(), 1u);
  // The first incremental swap lazily installed the recovery probe.
  EXPECT_TRUE(collector.has_probe());

  // The served replica now matches the retrained shadow bit for bit.
  std::ostringstream blob;
  ASSERT_TRUE(shadow.Save(blob).ok());
  auto reference = factory(blob.str());
  for (const auto& lq : labeled)
    EXPECT_DOUBLE_EQ(service.Estimate(lq.query),
                     reference->EstimateCardinality(lq.query));

  // Quiet cycle: nothing to drain, nothing swaps, epoch holds.
  LifecycleReport steady = lifecycle.RunOnce();
  EXPECT_EQ(steady.feedback_pairs, 0u);
  EXPECT_FALSE(steady.swapped);
  EXPECT_EQ(service.epoch(), 1u);
}

}  // namespace
}  // namespace lmkg::serving
