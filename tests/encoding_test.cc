#include <gtest/gtest.h>

#include "encoding/query_encoder.h"
#include "query/topology.h"
#include "encoding/term_encoder.h"
#include "test_util.h"
#include "util/math.h"

namespace lmkg::encoding {
namespace {

using query::PatternTerm;
using query::Query;

PatternTerm B(rdf::TermId id) { return PatternTerm::Bound(id); }
PatternTerm V(int v) { return PatternTerm::Variable(v); }

// --- term encoders ------------------------------------------------------------

class TermEncoderRoundTrip
    : public ::testing::TestWithParam<std::tuple<TermEncoding, size_t>> {};

TEST_P(TermEncoderRoundTrip, EncodeDecodeIsIdentity) {
  auto [encoding, domain] = GetParam();
  TermEncoder encoder(encoding, domain);
  std::vector<float> buf(encoder.width());
  for (rdf::TermId id = 0; id <= domain; ++id) {
    encoder.Encode(id, buf.data());
    EXPECT_EQ(encoder.Decode(buf.data()), id);
  }
}

TEST_P(TermEncoderRoundTrip, UnboundIsAllZeros) {
  auto [encoding, domain] = GetParam();
  TermEncoder encoder(encoding, domain);
  std::vector<float> buf(encoder.width(), 1.0f);
  encoder.Encode(rdf::kUnboundTerm, buf.data());
  for (float v : buf) EXPECT_EQ(v, 0.0f);
}

INSTANTIATE_TEST_SUITE_P(
    Domains, TermEncoderRoundTrip,
    ::testing::Combine(::testing::Values(TermEncoding::kOneHot,
                                         TermEncoding::kBinary),
                       ::testing::Values(size_t{1}, size_t{2}, size_t{3},
                                         size_t{8}, size_t{17},
                                         size_t{100})));

TEST(TermEncoderTest, Widths) {
  EXPECT_EQ(TermEncoder(TermEncoding::kOneHot, 100).width(), 100u);
  // Binary: ceil(log2(100)) + 1 = 8 (paper §V-A1).
  EXPECT_EQ(TermEncoder(TermEncoding::kBinary, 100).width(), 8u);
  EXPECT_EQ(TermEncoder(TermEncoding::kBinary, 3).width(), 3u);
}

TEST(TermEncoderTest, PaperBinaryExample) {
  // Paper §V: "for a KG with 3 unique subjects, the binary encoding of
  // the subject with id 2 will be [10]" (plus the reserved extra bit).
  TermEncoder encoder(TermEncoding::kBinary, 3);
  std::vector<float> buf(encoder.width());
  encoder.Encode(2, buf.data());
  // LSB-first bit layout: 2 = 010.
  EXPECT_EQ(buf[0], 0.0f);
  EXPECT_EQ(buf[1], 1.0f);
  EXPECT_EQ(buf[2], 0.0f);
}

TEST(TermEncoderTest, PaperOneHotExample) {
  // "if the total number of subjects is 3, the one-hot encoding of the
  // subject with id 2 will be [010]".
  TermEncoder encoder(TermEncoding::kOneHot, 3);
  std::vector<float> buf(encoder.width());
  encoder.Encode(2, buf.data());
  EXPECT_EQ(buf[0], 0.0f);
  EXPECT_EQ(buf[1], 1.0f);
  EXPECT_EQ(buf[2], 0.0f);
}

TEST(TermEncoderDeathTest, IdBeyondDomainAborts) {
  TermEncoder encoder(TermEncoding::kBinary, 3);
  std::vector<float> buf(encoder.width());
  EXPECT_DEATH(encoder.Encode(4, buf.data()), "LMKG_CHECK");
}

// --- query encoders ------------------------------------------------------------

class QueryEncoderTest : public ::testing::Test {
 protected:
  QueryEncoderTest() : graph_(lmkg::testing::MakeRandomGraph(20, 5, 80, 1)) {}
  rdf::Graph graph_;
};

TEST_F(QueryEncoderTest, StarEncoderWidth) {
  auto enc = MakeStarEncoder(graph_, 3, TermEncoding::kBinary);
  size_t node_bits = util::BinaryEncodingBits(graph_.num_nodes());
  size_t pred_bits = util::BinaryEncodingBits(graph_.num_predicates());
  EXPECT_EQ(enc->width(), node_bits + 3 * (pred_bits + node_bits));
}

TEST_F(QueryEncoderTest, ChainEncoderWidth) {
  auto enc = MakeChainEncoder(graph_, 3, TermEncoding::kBinary);
  size_t node_bits = util::BinaryEncodingBits(graph_.num_nodes());
  size_t pred_bits = util::BinaryEncodingBits(graph_.num_predicates());
  EXPECT_EQ(enc->width(), 4 * node_bits + 3 * pred_bits);
}

TEST_F(QueryEncoderTest, StarEncoderAcceptsOnlyStarsWithinCapacity) {
  auto enc = MakeStarEncoder(graph_, 2, TermEncoding::kBinary);
  Query star2 = query::MakeStarQuery(V(0), {{B(1), B(2)}, {B(2), V(1)}});
  Query star3 = query::MakeStarQuery(
      V(0), {{B(1), B(2)}, {B(2), V(1)}, {B(3), V(2)}});
  Query chain = query::MakeChainQuery({V(0), V(1), V(2)}, {B(1), B(2)});
  EXPECT_TRUE(enc->CanEncode(star2));
  EXPECT_FALSE(enc->CanEncode(star3));
  EXPECT_FALSE(enc->CanEncode(chain));
}

TEST_F(QueryEncoderTest, StarEncodingIsCanonicalUnderPatternOrder) {
  auto enc = MakeStarEncoder(graph_, 2, TermEncoding::kBinary);
  Query a = query::MakeStarQuery(V(0), {{B(1), B(2)}, {B(3), B(4)}});
  Query b = query::MakeStarQuery(V(0), {{B(3), B(4)}, {B(1), B(2)}});
  EXPECT_EQ(enc->EncodeToVector(a), enc->EncodeToVector(b));
}

TEST_F(QueryEncoderTest, SmallerQueryIsZeroPadded) {
  auto enc = MakeStarEncoder(graph_, 3, TermEncoding::kBinary);
  Query star1 = query::MakeStarQuery(V(0), {{B(1), B(2)}});
  std::vector<float> v = enc->EncodeToVector(star1);
  size_t node_bits = util::BinaryEncodingBits(graph_.num_nodes());
  size_t pred_bits = util::BinaryEncodingBits(graph_.num_predicates());
  // The trailing two (p, o) slots must be all zero.
  size_t tail_start = node_bits + (pred_bits + node_bits);
  for (size_t i = tail_start; i < v.size(); ++i) EXPECT_EQ(v[i], 0.0f);
}

TEST_F(QueryEncoderTest, UnboundTermsEncodeAsZeros) {
  auto enc = MakeStarEncoder(graph_, 1, TermEncoding::kBinary);
  Query q = query::MakeStarQuery(V(0), {{B(1), V(1)}});
  std::vector<float> v = enc->EncodeToVector(q);
  size_t node_bits = util::BinaryEncodingBits(graph_.num_nodes());
  // Subject slot (variable) all zero.
  for (size_t i = 0; i < node_bits; ++i) EXPECT_EQ(v[i], 0.0f);
}

TEST_F(QueryEncoderTest, ChainEncoderLaysOutWalkOrder) {
  auto enc = MakeChainEncoder(graph_, 2, TermEncoding::kOneHot);
  Query q = query::MakeChainQuery({B(5), V(0), B(7)}, {B(2), B(3)});
  std::vector<float> v = enc->EncodeToVector(q);
  size_t n = graph_.num_nodes();
  size_t b = graph_.num_predicates();
  // [n1 | p1 | n2 | p2 | n3] with one-hot widths [n, b, n, b, n].
  EXPECT_EQ(v[5 - 1], 1.0f);                    // n1 = 5
  EXPECT_EQ(v[n + 2 - 1], 1.0f);                // p1 = 2
  for (size_t i = n + b; i < n + b + n; ++i)    // n2 unbound
    EXPECT_EQ(v[i], 0.0f);
  EXPECT_EQ(v[n + b + n + 3 - 1], 1.0f);        // p2 = 3
  EXPECT_EQ(v[n + b + n + b + 7 - 1], 1.0f);    // n3 = 7
}

// --- SG-Encoding ------------------------------------------------------------------

TEST_F(QueryEncoderTest, SgFootprint) {
  Query star = query::MakeStarQuery(V(0), {{B(1), B(2)}, {B(2), V(1)}});
  SgFootprint fp = ComputeSgFootprint(star);
  EXPECT_EQ(fp.nodes, 3);
  EXPECT_EQ(fp.edges, 2);
  // Shared objects collapse into one node.
  Query shared = query::MakeStarQuery(V(0), {{B(1), B(2)}, {B(3), B(2)}});
  EXPECT_EQ(ComputeSgFootprint(shared).nodes, 2);
}

TEST_F(QueryEncoderTest, SgWidthFormula) {
  auto enc = MakeSgEncoder(graph_, 4, 3, TermEncoding::kBinary);
  size_t node_bits = util::BinaryEncodingBits(graph_.num_nodes());
  size_t pred_bits = util::BinaryEncodingBits(graph_.num_predicates());
  EXPECT_EQ(enc->width(),
            size_t{4} * 4 * 3 + 4 * node_bits + 3 * pred_bits);
}

TEST_F(QueryEncoderTest, SgEncodesBothTopologiesInOneEncoder) {
  auto enc = MakeSgEncoder(graph_, 4, 3, TermEncoding::kBinary);
  Query star = query::MakeStarQuery(V(0), {{B(1), B(2)}, {B(2), V(1)}});
  Query chain = query::MakeChainQuery({V(0), V(1), V(2)}, {B(1), B(2)});
  EXPECT_TRUE(enc->CanEncode(star));
  EXPECT_TRUE(enc->CanEncode(chain));
  EXPECT_NE(enc->EncodeToVector(star), enc->EncodeToVector(chain));
}

TEST_F(QueryEncoderTest, SgRejectsOverCapacity) {
  auto enc = MakeSgEncoder(graph_, 3, 2, TermEncoding::kBinary);
  Query star3 = query::MakeStarQuery(
      V(0), {{B(1), V(1)}, {B(2), V(2)}, {B(3), V(3)}});
  EXPECT_FALSE(enc->CanEncode(star3));
}

TEST_F(QueryEncoderTest, SgAdjacencyStructureMatchesPaperExample) {
  // Fig. 2: star query ?Book hasAuthor StephenKing ; genre Horror with
  // n=3, e=2: edge 0 from node 0 (the variable) to node 1, edge 1 from
  // node 0 to node 2.
  auto enc = MakeSgEncoder(graph_, 3, 2, TermEncoding::kBinary);
  Query q = query::MakeStarQuery(V(0), {{B(1), B(2)}, {B(2), B(3)}});
  std::vector<float> v = enc->EncodeToVector(q);
  const int n = 3, e = 2;
  auto a = [&](int i, int j, int l) { return v[(i * n + j) * e + l]; };
  EXPECT_EQ(a(0, 1, 0), 1.0f);  // first pattern: centre -> first object
  EXPECT_EQ(a(0, 2, 1), 1.0f);  // second pattern: centre -> second object
  // Exactly two set bits in A.
  float total = 0;
  for (int i = 0; i < n * n * e; ++i) total += v[i];
  EXPECT_EQ(total, 2.0f);
}

TEST_F(QueryEncoderTest, SgCanonicalUnderPatternOrder) {
  auto enc = MakeSgEncoder(graph_, 3, 2, TermEncoding::kBinary);
  Query a = query::MakeStarQuery(V(0), {{B(1), B(2)}, {B(2), B(3)}});
  Query b = query::MakeStarQuery(V(0), {{B(2), B(3)}, {B(1), B(2)}});
  EXPECT_EQ(enc->EncodeToVector(a), enc->EncodeToVector(b));
}

TEST_F(QueryEncoderTest, SgDistinguishesDirection) {
  auto enc = MakeSgEncoder(graph_, 3, 2, TermEncoding::kBinary);
  // 1 -p-> 2 chain vs 2 -p-> 1 chain (as bound single-edge queries
  // extended by a second hop to stay >= 2 patterns is unnecessary —
  // single patterns are fine for the encoder).
  Query forward;
  forward.patterns.push_back({B(1), B(1), B(2)});
  query::NormalizeVariables(&forward);
  Query backward;
  backward.patterns.push_back({B(2), B(1), B(1)});
  query::NormalizeVariables(&backward);
  EXPECT_NE(enc->EncodeToVector(forward), enc->EncodeToVector(backward));
}

TEST_F(QueryEncoderTest, SgEncodesCompositeShapes) {
  // The SG-Encoding's §V-A1 claim: trees, cycles, and compounds fit the
  // same encoder as stars and chains (first-occurrence node order).
  auto enc = MakeSgEncoder(graph_, 5, 4, TermEncoding::kBinary);
  query::Query tree = query::MakeTreeQuery(
      {query::PatternTerm::Variable(0), query::PatternTerm::Variable(1),
       query::PatternTerm::Variable(2), query::PatternTerm::Variable(3)},
      {-1, 0, 0, 1},
      {query::PatternTerm::Bound(1), query::PatternTerm::Bound(2),
       query::PatternTerm::Bound(3)});
  ASSERT_EQ(query::ClassifyDetailedTopology(tree),
            query::DetailedTopology::kTree);
  ASSERT_TRUE(enc->CanEncode(tree));
  query::Query cycle = query::MakeCycleQuery(
      {query::PatternTerm::Variable(0), query::PatternTerm::Variable(1),
       query::PatternTerm::Variable(2)},
      {query::PatternTerm::Bound(1), query::PatternTerm::Bound(2),
       query::PatternTerm::Bound(3)});
  ASSERT_TRUE(enc->CanEncode(cycle));

  // Distinct shapes over the same terms produce distinct features.
  auto tree_vec = enc->EncodeToVector(tree);
  auto cycle_vec = enc->EncodeToVector(cycle);
  EXPECT_NE(tree_vec, cycle_vec);
}

TEST_F(QueryEncoderTest, SgCompositeFootprintGatesCapacity) {
  // A 4-edge tree has 5 nodes: fits (5, 4), not (4, 4) or (5, 3).
  query::Query tree = query::MakeTreeQuery(
      {query::PatternTerm::Variable(0), query::PatternTerm::Variable(1),
       query::PatternTerm::Variable(2), query::PatternTerm::Variable(3),
       query::PatternTerm::Variable(4)},
      {-1, 0, 0, 1, 1},
      {query::PatternTerm::Bound(1), query::PatternTerm::Bound(2),
       query::PatternTerm::Bound(3), query::PatternTerm::Bound(4)});
  EXPECT_TRUE(MakeSgEncoder(graph_, 5, 4, TermEncoding::kBinary)
                  ->CanEncode(tree));
  EXPECT_FALSE(MakeSgEncoder(graph_, 4, 4, TermEncoding::kBinary)
                   ->CanEncode(tree));
  EXPECT_FALSE(MakeSgEncoder(graph_, 5, 3, TermEncoding::kBinary)
                   ->CanEncode(tree));
  // A cycle of 4 edges has only 4 nodes: fits (4, 4).
  query::Query cycle = query::MakeCycleQuery(
      {query::PatternTerm::Variable(0), query::PatternTerm::Variable(1),
       query::PatternTerm::Variable(2), query::PatternTerm::Variable(3)},
      {query::PatternTerm::Bound(1), query::PatternTerm::Bound(2),
       query::PatternTerm::Bound(3), query::PatternTerm::Bound(4)});
  EXPECT_TRUE(MakeSgEncoder(graph_, 4, 4, TermEncoding::kBinary)
                  ->CanEncode(cycle));
}

TEST_F(QueryEncoderTest, EncoderNames) {
  EXPECT_EQ(MakeStarEncoder(graph_, 2, TermEncoding::kBinary)->name(),
            "star2-binary");
  EXPECT_EQ(MakeChainEncoder(graph_, 3, TermEncoding::kOneHot)->name(),
            "chain3-one-hot");
  EXPECT_EQ(MakeSgEncoder(graph_, 4, 3, TermEncoding::kBinary)->name(),
            "sg-n4-e3-binary");
}

}  // namespace
}  // namespace lmkg::encoding
