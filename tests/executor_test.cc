#include <gtest/gtest.h>

#include "query/executor.h"
#include "query/query.h"
#include "query/sparql_parser.h"
#include "test_util.h"

namespace lmkg::query {
namespace {

PatternTerm B(rdf::TermId id) { return PatternTerm::Bound(id); }
PatternTerm V(int v) { return PatternTerm::Variable(v); }

class ExecutorPaperGraphTest : public ::testing::Test {
 protected:
  ExecutorPaperGraphTest()
      : graph_(lmkg::testing::MakePaperExampleGraph()),
        executor_(graph_) {}

  uint64_t CountSparql(const std::string& text) {
    auto parsed = ParseSparql(text, graph_);
    EXPECT_TRUE(parsed.ok()) << parsed.status().message();
    return executor_.Count(parsed.value());
  }

  rdf::Graph graph_;
  Executor executor_;
};

TEST_F(ExecutorPaperGraphTest, StarQueryFromPaper) {
  // Books by StephenKing of genre Horror: TheShining, IT.
  EXPECT_EQ(CountSparql("SELECT ?x WHERE { ?x <hasAuthor> <StephenKing> ; "
                        "<genre> <Horror> . }"),
            2u);
}

TEST_F(ExecutorPaperGraphTest, ChainQueryFromPaper) {
  // Books whose author was born in the USA: TheShining, IT.
  EXPECT_EQ(CountSparql("SELECT ?x ?y WHERE { ?x <hasAuthor> ?y . "
                        "?y <bornIn> <USA> . }"),
            2u);
}

TEST_F(ExecutorPaperGraphTest, SingleTriplePatterns) {
  EXPECT_EQ(CountSparql("SELECT ?x WHERE { ?x <genre> <Horror> . }"), 3u);
  EXPECT_EQ(CountSparql("SELECT ?o WHERE { <IT> <hasAuthor> ?o . }"), 1u);
  EXPECT_EQ(CountSparql("SELECT ?p WHERE { <IT> ?p <Horror> . }"), 1u);
  EXPECT_EQ(CountSparql("SELECT ?s ?o WHERE { ?s <genre> ?o . }"), 4u);
}

TEST_F(ExecutorPaperGraphTest, FullyBoundQuery) {
  EXPECT_EQ(CountSparql(
                "SELECT * WHERE { <IT> <hasAuthor> <StephenKing> . }"),
            1u);
  EXPECT_EQ(
      CountSparql("SELECT * WHERE { <IT> <hasAuthor> <BramStoker> . }"),
      0u);
}

TEST_F(ExecutorPaperGraphTest, CompositeQuery) {
  // Star over ?x joined with a chain through ?y.
  EXPECT_EQ(CountSparql("SELECT ?x ?y WHERE { ?x <genre> <Horror> . "
                        "?x <hasAuthor> ?y . ?y <bornIn> ?c . }"),
            3u);  // TheShining/IT via USA, Dracula via Ireland
}

TEST_F(ExecutorPaperGraphTest, AllUnboundSingle) {
  Query q;
  q.patterns.push_back(TriplePattern{V(0), V(1), V(2)});
  NormalizeVariables(&q);
  EXPECT_EQ(Executor(graph_).Count(q), graph_.num_triples());
}

TEST_F(ExecutorPaperGraphTest, LimitStopsEarly) {
  // Two disconnected all-unbound patterns: the full count is
  // num_triples^2; the executor must stop after the first outer binding
  // once the limit is reached.
  Query q;
  q.patterns.push_back(TriplePattern{V(0), V(1), V(2)});
  q.patterns.push_back(TriplePattern{V(3), V(4), V(5)});
  NormalizeVariables(&q);
  uint64_t total = graph_.num_triples() * graph_.num_triples();
  uint64_t capped = Executor(graph_).Count(q, 3);
  EXPECT_GE(capped, 3u);
  EXPECT_LT(capped, total);
  EXPECT_EQ(Executor(graph_).Count(q), total);
}

TEST(ExecutorTest, RepeatedVariableWithinPattern) {
  // Self-loop pattern (?x p ?x).
  rdf::Graph graph;
  graph.AddTripleIds(1, 1, 1);
  graph.AddTripleIds(2, 1, 3);
  graph.AddTripleIds(4, 1, 4);
  graph.Finalize();
  Query q;
  q.patterns.push_back(TriplePattern{V(0), B(1), V(0)});
  NormalizeVariables(&q);
  EXPECT_EQ(Executor(graph).Count(q), 2u);
}

TEST(ExecutorTest, SharedVariableAcrossPatternsBindsConsistently) {
  rdf::Graph graph;
  graph.AddTripleIds(1, 1, 2);
  graph.AddTripleIds(2, 2, 3);
  graph.AddTripleIds(1, 1, 4);
  graph.AddTripleIds(4, 2, 3);
  graph.AddTripleIds(1, 1, 5);  // 5 has no outgoing edge
  graph.Finalize();
  // ?a 1 ?b . ?b 2 3
  Query q = MakeChainQuery({V(0), V(1), B(3)}, {B(1), B(2)});
  EXPECT_EQ(Executor(graph).Count(q), 2u);
}

TEST(ExecutorDeathTest, InvalidQueryAborts) {
  rdf::Graph graph = lmkg::testing::MakeRandomGraph(5, 2, 10, 1);
  Executor executor(graph);
  Query q;
  q.patterns.push_back(TriplePattern{V(0), B(1), V(5)});
  q.num_vars = 1;  // var 5 out of range
  EXPECT_DEATH(executor.Count(q), "LMKG_CHECK");
}

// Property test: the executor agrees with exhaustive enumeration on
// random graphs and random star/chain queries.
class ExecutorPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ExecutorPropertyTest, MatchesBruteForce) {
  const int seed = GetParam();
  util::Pcg32 rng(seed, /*stream=*/0xec);
  rdf::Graph graph =
      lmkg::testing::MakeRandomGraph(8, 3, 40, seed * 17 + 1);
  Executor executor(graph);

  for (int trial = 0; trial < 12; ++trial) {
    // Random star or chain query of size 2-3 with random bound/unbound
    // mix (kept tiny: brute force is exponential in num_vars).
    bool star = rng.Bernoulli(0.5);
    int k = 2 + static_cast<int>(rng.UniformInt(2));
    int next_var = 0;
    auto term = [&](double bound_prob, uint32_t domain) {
      if (rng.Bernoulli(bound_prob))
        return B(1 + rng.UniformInt(domain));
      return V(next_var++);
    };
    Query q;
    if (star) {
      std::vector<std::pair<PatternTerm, PatternTerm>> pairs;
      for (int i = 0; i < k; ++i)
        pairs.emplace_back(B(1 + rng.UniformInt(3)), term(0.6, 8));
      q = MakeStarQuery(term(0.3, 8), pairs);
    } else {
      std::vector<PatternTerm> nodes;
      std::vector<PatternTerm> preds;
      for (int i = 0; i <= k; ++i) nodes.push_back(term(0.4, 8));
      for (int i = 0; i < k; ++i) preds.push_back(B(1 + rng.UniformInt(3)));
      // Distinct node terms required for a valid chain; accept whatever
      // MakeChainQuery produces (the executor must handle all shapes).
      q = MakeChainQuery(nodes, preds);
    }
    if (q.num_vars > 4) continue;  // keep brute force cheap
    EXPECT_EQ(executor.Count(q), lmkg::testing::BruteForceCount(graph, q))
        << QueryToString(q);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExecutorPropertyTest,
                         ::testing::Range(1, 11));

}  // namespace
}  // namespace lmkg::query
