#include <gtest/gtest.h>

#include <cmath>

#include "baselines/cset.h"
#include "baselines/wander_join.h"
#include "core/lmkg.h"
#include "data/dataset.h"
#include "eval/harness.h"
#include "eval/suite.h"
#include "query/executor.h"
#include "query/sparql_parser.h"
#include "util/math.h"

// End-to-end tests over a real (scaled-down) synthetic dataset: the whole
// pipeline from dataset generation through workload creation, model
// training, and evaluation harness.

namespace lmkg {
namespace {

using query::Topology;

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    graph_ = new rdf::Graph(data::MakeDataset("swdf", 0.004, 77));
  }
  static void TearDownTestSuite() {
    delete graph_;
    graph_ = nullptr;
  }

  static rdf::Graph* graph_;
};

rdf::Graph* IntegrationTest::graph_ = nullptr;

TEST_F(IntegrationTest, DatasetIsUsable) {
  EXPECT_GT(graph_->num_triples(), 500u);
  EXPECT_EQ(graph_->num_predicates(), 171u);
}

TEST_F(IntegrationTest, SparqlToExactCardinality) {
  // Papers by a concrete frequent author (person/0 is the Zipf head).
  auto parsed = query::ParseSparql(
      "SELECT ?paper WHERE { ?paper <foaf:maker> <person/0> . }",
      *graph_);
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  query::Executor executor(*graph_);
  EXPECT_GT(executor.Count(parsed.value()), 0u);
}

TEST_F(IntegrationTest, WorkloadsCoverBothTopologies) {
  eval::SuiteOptions options;
  options.query_sizes = {2, 3};
  options.test_queries_per_combo = 30;
  options.seed = 5;
  eval::WorkloadSet set = eval::BuildTestWorkloads(*graph_, options);
  ASSERT_EQ(set.combos.size(), 4u);
  EXPECT_GT(set.ByTopology(Topology::kStar).size(), 20u);
  EXPECT_GT(set.ByTopology(Topology::kChain).size(), 20u);
  EXPECT_GT(set.BySize(2).size(), 20u);
  EXPECT_EQ(set.All().size(),
            set.ByTopology(Topology::kStar).size() +
                set.ByTopology(Topology::kChain).size());
}

TEST_F(IntegrationTest, LmkgSBeatsSamplingFreeBaselineOnStars) {
  eval::SuiteOptions options;
  options.query_sizes = {2};
  options.test_queries_per_combo = 40;
  options.train_queries_per_combo = 300;
  options.s_epochs = 40;
  options.s_hidden_dim = 64;
  options.seed = 6;

  auto lmkg_s = eval::BuildLmkgS(*graph_, options);
  eval::WorkloadSet test = eval::BuildTestWorkloads(*graph_, options);
  auto stars = test.ByTopology(Topology::kStar);
  ASSERT_GT(stars.size(), 15u);

  eval::EvalResult s_result = eval::Evaluate(lmkg_s.get(), stars);
  EXPECT_EQ(s_result.estimator, "LMKG-S");
  EXPECT_GT(s_result.queries, 0u);
  EXPECT_LT(s_result.qerror.median, 8.0);
}

TEST_F(IntegrationTest, EvaluateHarnessMeasuresTime) {
  baselines::CsetEstimator cset(*graph_);
  eval::SuiteOptions options;
  options.query_sizes = {2};
  options.test_queries_per_combo = 20;
  options.seed = 7;
  eval::WorkloadSet test = eval::BuildTestWorkloads(*graph_, options);
  eval::EvalResult result =
      eval::Evaluate(&cset, test.ByTopology(Topology::kStar));
  EXPECT_GT(result.queries, 0u);
  EXPECT_GE(result.avg_estimation_ms, 0.0);
  EXPECT_GE(result.qerror.median, 1.0);
}

TEST_F(IntegrationTest, BucketFiltersPartitionWorkload) {
  eval::SuiteOptions options;
  options.query_sizes = {2};
  options.test_queries_per_combo = 60;
  options.seed = 8;
  eval::WorkloadSet test = eval::BuildTestWorkloads(*graph_, options);
  auto all = test.All();
  size_t covered = 0;
  for (const auto& bucket : eval::PaperBuckets())
    covered += eval::FilterByBucketRange(all, bucket.lo, bucket.hi).size();
  EXPECT_EQ(covered, all.size());
}

TEST_F(IntegrationTest, ComputeQErrorsAlignsWithWorkload) {
  baselines::WanderJoinEstimator::Options wj_opts;
  wj_opts.num_walks = 100;
  baselines::WanderJoinEstimator wj(*graph_, wj_opts);
  eval::SuiteOptions options;
  options.query_sizes = {2};
  options.test_queries_per_combo = 15;
  options.seed = 9;
  eval::WorkloadSet test = eval::BuildTestWorkloads(*graph_, options);
  auto stars = test.ByTopology(Topology::kStar);
  auto qerrors = eval::ComputeQErrors(&wj, stars);
  ASSERT_EQ(qerrors.size(), stars.size());
  for (double q : qerrors) {
    EXPECT_FALSE(std::isnan(q));
    EXPECT_GE(q, 1.0);
  }
}

TEST(SuiteOptionsTest, FlagsOverrideDefaults) {
  const char* argv[] = {"bench", "--scale=0.5", "--queries=77",
                        "--s_epochs=3"};
  eval::SuiteOptions options =
      eval::SuiteOptionsFromFlags(4, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(options.dataset_scale, 0.5);
  EXPECT_EQ(options.test_queries_per_combo, 77u);
  EXPECT_EQ(options.s_epochs, 3);
}

TEST(SuiteOptionsTest, PaperFlagRaisesScale) {
  const char* argv[] = {"bench", "--paper"};
  eval::SuiteOptions options =
      eval::SuiteOptionsFromFlags(2, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(options.dataset_scale, 1.0);
  EXPECT_EQ(options.test_queries_per_combo, 600u);
  EXPECT_EQ(options.s_epochs, 200);
}

}  // namespace
}  // namespace lmkg
