// Concurrency-correctness tests for serving::EstimatorService: K client
// threads hammering the service with a shuffled workload must observe
// results pinned IDENTICAL to the serial per-query path — LMKG-S batch
// results are bit-equal to per-query results (the PR-2/3 contract), so
// no batching schedule, worker interleaving, replica choice, or cache
// hit may change a single bit of any response. Also covers the dynamic
// micro-batcher's dispatch rules, the fingerprint cache front, async
// futures, stats, and shutdown draining. This suite is the target of the
// ASan and TSan CI legs.
#include "serving/estimator_service.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <future>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include "core/lmkg_s.h"
#include "encoding/query_encoder.h"
#include "query/fingerprint.h"
#include "sampling/workload.h"
#include "test_util.h"
#include "util/check.h"
#include "util/random.h"

namespace lmkg::serving {
namespace {

using lmkg::testing::MakeRandomGraph;
using query::Query;
using query::Topology;

constexpr int kMaxQuerySize = 3;

std::vector<Query> MakeWorkload(const rdf::Graph& graph, size_t per_combo,
                                uint64_t seed) {
  sampling::WorkloadGenerator generator(graph);
  std::vector<Query> queries;
  uint64_t combo = 0;
  for (Topology topology : {Topology::kStar, Topology::kChain}) {
    for (int size : {2, kMaxQuerySize}) {
      sampling::WorkloadGenerator::Options options;
      options.topology = topology;
      options.query_size = size;
      options.count = per_combo;
      options.seed = seed + 31 * combo++;
      for (auto& lq : generator.Generate(options))
        queries.push_back(std::move(lq.query));
    }
  }
  return queries;
}

class ServingTest : public ::testing::Test {
 protected:
  ServingTest() : graph_(MakeRandomGraph(60, 6, 700, 11)) {
    core::LmkgSConfig config;
    config.hidden_dim = 16;
    config.epochs = 2;
    config.dropout = 0.0;
    config.seed = 7;
    reference_ = std::make_unique<core::LmkgS>(NewEncoder(), config);

    sampling::WorkloadGenerator generator(graph_);
    std::vector<sampling::LabeledQuery> train;
    uint64_t combo = 0;
    for (Topology topology : {Topology::kStar, Topology::kChain}) {
      for (int size : {2, kMaxQuerySize}) {
        sampling::WorkloadGenerator::Options options;
        options.topology = topology;
        options.query_size = size;
        options.count = 40;
        options.seed = 1000 + 31 * combo++;
        auto labeled = generator.Generate(options);
        train.insert(train.end(), labeled.begin(), labeled.end());
      }
    }
    reference_->Train(train);
    std::ostringstream blob;
    LMKG_CHECK(reference_->Save(blob).ok());
    model_blob_ = blob.str();

    workload_ = MakeWorkload(graph_, 20, 5);
    expected_.reserve(workload_.size());
    for (const Query& q : workload_)
      expected_.push_back(reference_->EstimateCardinality(q));
  }

  std::unique_ptr<encoding::QueryEncoder> NewEncoder() {
    return encoding::MakeSgEncoder(graph_, kMaxQuerySize + 1,
                                   kMaxQuerySize,
                                   encoding::TermEncoding::kBinary);
  }

  // A replica is the trained reference serialized and re-loaded — the
  // "train once, serve from R copies" deployment shape.
  std::unique_ptr<core::CardinalityEstimator> NewReplica() {
    core::LmkgSConfig config;
    config.hidden_dim = 16;
    config.epochs = 2;
    config.dropout = 0.0;
    config.seed = 7;
    auto replica = std::make_unique<core::LmkgS>(NewEncoder(), config);
    std::istringstream blob(model_blob_);
    EXPECT_TRUE(replica->Load(blob).ok());
    return replica;
  }

  std::vector<std::unique_ptr<core::CardinalityEstimator>> Replicas(
      size_t n) {
    std::vector<std::unique_ptr<core::CardinalityEstimator>> replicas;
    for (size_t i = 0; i < n; ++i) replicas.push_back(NewReplica());
    return replicas;
  }

  rdf::Graph graph_;
  std::unique_ptr<core::LmkgS> reference_;
  std::string model_blob_;
  std::vector<Query> workload_;
  std::vector<double> expected_;
};

TEST_F(ServingTest, ReplicaReproducesReferenceEstimates) {
  auto replica = NewReplica();
  for (size_t i = 0; i < workload_.size(); ++i)
    EXPECT_DOUBLE_EQ(replica->EstimateCardinality(workload_[i]),
                     expected_[i]);
}

TEST_F(ServingTest, BlockingEstimateMatchesSerialPath) {
  ServiceConfig config;
  config.max_batch_size = 16;
  EstimatorService service(Replicas(1), config);
  for (size_t i = 0; i < workload_.size(); ++i)
    EXPECT_DOUBLE_EQ(service.Estimate(workload_[i]), expected_[i]);
  const ServingStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.requests, workload_.size());
  EXPECT_GE(stats.batches, 1u);
}

TEST_F(ServingTest, AsyncFuturesMatchSerialPath) {
  ServiceConfig config;
  config.max_batch_size = 8;
  config.max_queue_delay_us = 100;
  EstimatorService service(Replicas(1), config);
  std::vector<std::future<double>> futures;
  futures.reserve(workload_.size());
  for (const Query& q : workload_)
    futures.push_back(service.EstimateAsync(q));
  for (size_t i = 0; i < workload_.size(); ++i)
    EXPECT_DOUBLE_EQ(futures[i].get(), expected_[i]);
}

// The headline stress: K threads, each submitting the whole workload in
// its own shuffled order, through shared replicas and workers — every
// single response must equal the serial per-query estimate exactly.
TEST_F(ServingTest, ConcurrentShuffledClientsMatchSerialPathExactly) {
  for (const bool with_cache : {false, true}) {
    ServiceConfig config;
    config.max_batch_size = 16;
    config.max_queue_delay_us = 100;
    config.cache_capacity = with_cache ? 1024 : 0;
    EstimatorService service(Replicas(2), config);

    constexpr size_t kClients = 8;
    std::vector<std::vector<double>> results(
        kClients, std::vector<double>(workload_.size(), 0.0));
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (size_t c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        std::vector<size_t> order(workload_.size());
        for (size_t i = 0; i < order.size(); ++i) order[i] = i;
        util::Pcg32 rng(900 + c);
        rng.Shuffle(&order);
        for (size_t i : order)
          results[c][i] = service.Estimate(workload_[i]);
      });
    }
    for (auto& client : clients) client.join();

    for (size_t c = 0; c < kClients; ++c)
      for (size_t i = 0; i < workload_.size(); ++i)
        EXPECT_DOUBLE_EQ(results[c][i], expected_[i])
            << "client " << c << " query " << i
            << " cache=" << with_cache;

    const ServingStatsSnapshot stats = service.Stats();
    EXPECT_EQ(stats.requests, kClients * workload_.size());
    if (with_cache) {
      EXPECT_GT(stats.cache_hits, 0u);
    }
  }
}

TEST_F(ServingTest, MicroBatcherDispatchesOnFullBatch) {
  // Delay far beyond the test runtime: the only way the batch can
  // dispatch quickly is the max_batch_size trigger, so exactly one batch
  // carries all 8 requests.
  ServiceConfig config;
  config.max_batch_size = 8;
  config.max_queue_delay_us = 2'000'000;
  EstimatorService service(Replicas(1), config);
  std::vector<std::future<double>> futures;
  for (size_t i = 0; i < 8; ++i)
    futures.push_back(service.EstimateAsync(workload_[i]));
  for (size_t i = 0; i < 8; ++i)
    EXPECT_DOUBLE_EQ(futures[i].get(), expected_[i]);
  const ServingStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_DOUBLE_EQ(stats.mean_batch_fill, 8.0);
}

TEST_F(ServingTest, MicroBatcherDispatchesOnDelayExpiry) {
  // One pending request, batch never fills: the delay deadline must
  // dispatch it (and the end-to-end latency reflects the wait). Inline
  // execution would serve an idle-shard Estimate on the caller's thread
  // and never exercise the window — off, it is the path under test.
  ServiceConfig config;
  config.inline_execution = false;
  config.max_batch_size = 64;
  config.max_queue_delay_us = 2'000;
  EstimatorService service(Replicas(1), config);
  EXPECT_DOUBLE_EQ(service.Estimate(workload_[0]), expected_[0]);
  const ServingStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_DOUBLE_EQ(stats.mean_batch_fill, 1.0);
  EXPECT_GE(stats.max_us, 2'000.0);
}

TEST_F(ServingTest, CacheShortCircuitsRepeatsAndEquivalentQueries) {
  ServiceConfig config;
  config.max_batch_size = 16;
  config.cache_capacity = 1024;
  EstimatorService service(Replicas(1), config);
  for (size_t i = 0; i < workload_.size(); ++i)
    EXPECT_DOUBLE_EQ(service.Estimate(workload_[i]), expected_[i]);
  const uint64_t batched_first_pass = service.Stats().batched_requests;
  // Second pass: every query hits.
  for (size_t i = 0; i < workload_.size(); ++i)
    EXPECT_DOUBLE_EQ(service.Estimate(workload_[i]), expected_[i]);
  const ServingStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.cache_hits, workload_.size());
  EXPECT_EQ(stats.batched_requests, batched_first_pass);
  EXPECT_GT(stats.cache_hit_rate, 0.49);

  // A pattern-shuffled variant is the same canonical query: hit, same
  // answer.
  Query shuffled = workload_[0];
  std::reverse(shuffled.patterns.begin(), shuffled.patterns.end());
  EXPECT_DOUBLE_EQ(service.Estimate(shuffled), expected_[0]);
  EXPECT_EQ(service.Stats().cache_hits, workload_.size() + 1);
}

TEST_F(ServingTest, EstimateBatchMatchesSerialPath) {
  for (const size_t shards : {size_t{1}, size_t{2}}) {
    for (const bool with_cache : {false, true}) {
      ServiceConfig config;
      config.max_batch_size = 16;
      config.cache_capacity = with_cache ? 1024 : 0;
      EstimatorService service(Replicas(shards), config);
      std::vector<double> results(workload_.size(), -1.0);
      service.EstimateBatch(workload_, results);
      for (size_t i = 0; i < workload_.size(); ++i)
        EXPECT_DOUBLE_EQ(results[i], expected_[i])
            << "shards=" << shards << " cache=" << with_cache;
      // Second submission: with the cache on it must be served entirely
      // from it, and either way stays bit-identical.
      service.EstimateBatch(workload_, results);
      for (size_t i = 0; i < workload_.size(); ++i)
        EXPECT_DOUBLE_EQ(results[i], expected_[i]);
      const ServingStatsSnapshot stats = service.Stats();
      EXPECT_EQ(stats.requests, 2 * workload_.size());
      if (with_cache) {
        EXPECT_EQ(stats.cache_hits, workload_.size());
      }
    }
  }
}

TEST_F(ServingTest, EstimateBatchAsyncMatchesSerialPath) {
  ServiceConfig config;
  config.max_batch_size = 16;
  config.cache_capacity = 1024;
  EstimatorService service(Replicas(2), config);
  auto futures = service.EstimateBatchAsync(workload_);
  ASSERT_EQ(futures.size(), workload_.size());
  for (size_t i = 0; i < workload_.size(); ++i)
    EXPECT_DOUBLE_EQ(futures[i].get(), expected_[i]);
  // Repeat resolves pre-fulfilled from the cache.
  auto again = service.EstimateBatchAsync(workload_);
  for (size_t i = 0; i < workload_.size(); ++i)
    EXPECT_DOUBLE_EQ(again[i].get(), expected_[i]);
}

TEST_F(ServingTest, EstimateBatchBackpressuresThroughTinyRing) {
  // A ring far smaller than the submission forces the bulk path through
  // its full-ring fallback (wake + blocking push) mid-batch; results
  // must still come back complete and exact.
  ServiceConfig config;
  config.max_batch_size = 4;
  config.ring_capacity = 4;
  EstimatorService service(Replicas(1), config);
  std::vector<double> results(workload_.size(), -1.0);
  service.EstimateBatch(workload_, results);
  for (size_t i = 0; i < workload_.size(); ++i)
    EXPECT_DOUBLE_EQ(results[i], expected_[i]);
}

// The planner-shaped TSan stress: K concurrent "enumerations", each
// fanning bulk submissions (sync and async alternating) over shared
// shards, caches, and rings — every response must equal the serial
// estimate bit for bit.
TEST_F(ServingTest, ConcurrentBatchSubmissionsMatchSerialPathExactly) {
  ServiceConfig config;
  config.max_batch_size = 16;
  config.max_queue_delay_us = 100;
  config.cache_capacity = 512;
  EstimatorService service(Replicas(2), config);

  constexpr size_t kEnumerations = 6;
  std::vector<std::vector<double>> results(
      kEnumerations, std::vector<double>(workload_.size(), 0.0));
  std::vector<std::thread> enumerations;
  enumerations.reserve(kEnumerations);
  for (size_t c = 0; c < kEnumerations; ++c) {
    enumerations.emplace_back([&, c] {
      // Shuffled sub-batches, like DP levels arriving in lattice order.
      std::vector<size_t> order(workload_.size());
      for (size_t i = 0; i < order.size(); ++i) order[i] = i;
      util::Pcg32 rng(4200 + c);
      rng.Shuffle(&order);
      const size_t chunk = 7;
      for (size_t start = 0; start < order.size(); start += chunk) {
        const size_t n = std::min(chunk, order.size() - start);
        std::vector<Query> queries;
        queries.reserve(n);
        for (size_t k = 0; k < n; ++k)
          queries.push_back(workload_[order[start + k]]);
        if ((start / chunk + c) % 2 == 0) {
          std::vector<double> out(n, 0.0);
          service.EstimateBatch(queries, out);
          for (size_t k = 0; k < n; ++k)
            results[c][order[start + k]] = out[k];
        } else {
          auto futures = service.EstimateBatchAsync(queries);
          for (size_t k = 0; k < n; ++k)
            results[c][order[start + k]] = futures[k].get();
        }
      }
    });
  }
  for (auto& e : enumerations) e.join();

  for (size_t c = 0; c < kEnumerations; ++c)
    for (size_t i = 0; i < workload_.size(); ++i)
      EXPECT_DOUBLE_EQ(results[c][i], expected_[i])
          << "enumeration " << c << " query " << i;
}

TEST_F(ServingTest, InlineFastPathMatchesQueuedPath) {
  // Same workload through an inline-enabled and an inline-disabled
  // service: identical results, and the single-threaded inline run must
  // execute at least some requests on the caller's thread (batches of
  // exactly 1 with an empty ring are the inline signature; with one
  // caller and no cache every request qualifies).
  ServiceConfig inline_config;
  inline_config.inline_execution = true;
  EstimatorService inline_service(Replicas(1), inline_config);
  ServiceConfig queued_config;
  queued_config.inline_execution = false;
  EstimatorService queued_service(Replicas(1), queued_config);
  for (size_t i = 0; i < workload_.size(); ++i) {
    EXPECT_DOUBLE_EQ(inline_service.Estimate(workload_[i]), expected_[i]);
    EXPECT_DOUBLE_EQ(queued_service.Estimate(workload_[i]), expected_[i]);
  }
  const ServingStatsSnapshot stats = inline_service.Stats();
  EXPECT_EQ(stats.requests, workload_.size());
  EXPECT_DOUBLE_EQ(stats.mean_batch_fill, 1.0);
}

TEST_F(ServingTest, DestructionDrainsOutstandingFutures) {
  std::vector<std::future<double>> futures;
  {
    // max_batch_size larger than the submission count and a long delay:
    // the requests would sit in the coalescing window, but shutdown must
    // dispatch and complete them all.
    ServiceConfig config;
    config.max_batch_size = 64;
    config.max_queue_delay_us = 10'000'000;
    EstimatorService service(Replicas(1), config);
    for (size_t i = 0; i < workload_.size(); ++i)
      futures.push_back(service.EstimateAsync(workload_[i]));
  }
  for (size_t i = 0; i < futures.size(); ++i)
    EXPECT_DOUBLE_EQ(futures[i].get(), expected_[i]);
}

}  // namespace
}  // namespace lmkg::serving
