// util::MpscRing — the lock-free submission path of one serving shard.
// Covers the single-threaded cell protocol (capacity rounding, FIFO,
// wrap-around reuse, full/closed rejection), the shutdown drain contract
// (accepted items stay poppable after Close), the timed consumer park,
// and multi-producer stress suites meant to run under TSan: concurrent
// enqueue/drain with per-producer FIFO checks, sustained wrap-around
// through a tiny ring, and producers racing Close.

#include "util/mpsc_ring.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace lmkg::util {
namespace {

TEST(MpscRingTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(MpscRing<int>(0).capacity(), 2u);
  EXPECT_EQ(MpscRing<int>(1).capacity(), 2u);
  EXPECT_EQ(MpscRing<int>(2).capacity(), 2u);
  EXPECT_EQ(MpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(MpscRing<int>(1000).capacity(), 1024u);
  EXPECT_EQ(MpscRing<int>(1024).capacity(), 1024u);
}

TEST(MpscRingTest, PushPopIsFifo) {
  MpscRing<int> ring(8);
  ring.AssertConsumer();  // this test body is the one consumer
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(ring.TryPush(i));
  EXPECT_EQ(ring.ApproxSize(), 5u);
  int out = -1;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(ring.TryPop(&out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(ring.TryPop(&out));
  EXPECT_EQ(ring.ApproxSize(), 0u);
}

TEST(MpscRingTest, TryPushFailsWhenFullThenSucceedsAfterPop) {
  MpscRing<int> ring(4);
  ring.AssertConsumer();  // this test body is the one consumer
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.TryPush(i));
  EXPECT_FALSE(ring.TryPush(99));  // full: consumer has not freed a slot
  int out = -1;
  ASSERT_TRUE(ring.TryPop(&out));
  EXPECT_EQ(out, 0);
  EXPECT_TRUE(ring.TryPush(99));
  // Drain preserves order: 1, 2, 3, 99.
  std::vector<int> drained;
  while (ring.TryPop(&out)) drained.push_back(out);
  EXPECT_EQ(drained, (std::vector<int>{1, 2, 3, 99}));
}

TEST(MpscRingTest, WrapAroundReusesSlotsManyLaps) {
  // 1000 items through a 4-slot ring exercises slot reuse 250 laps deep;
  // any sequence-number bookkeeping error shows up as a stuck push/pop
  // or an out-of-order item.
  MpscRing<int> ring(4);
  ring.AssertConsumer();  // this test body is the one consumer
  int next_out = 0;
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(ring.TryPush(i));
    if (i % 3 == 2) {  // drain in bursts so occupancy oscillates
      int out = -1;
      while (ring.TryPop(&out)) EXPECT_EQ(out, next_out++);
    }
  }
  int out = -1;
  while (ring.TryPop(&out)) EXPECT_EQ(out, next_out++);
  EXPECT_EQ(next_out, 1000);
}

TEST(MpscRingTest, CloseFailsPushesButDrainsAcceptedItems) {
  MpscRing<int> ring(8);
  ring.AssertConsumer();  // this test body is the one consumer
  EXPECT_TRUE(ring.TryPush(1));
  EXPECT_TRUE(ring.Push(2));
  ring.Close();
  EXPECT_TRUE(ring.closed());
  EXPECT_FALSE(ring.TryPush(3));
  EXPECT_FALSE(ring.Push(4));
  // The shutdown drain contract: everything accepted before Close is
  // still poppable, in order.
  int out = -1;
  ASSERT_TRUE(ring.TryPop(&out));
  EXPECT_EQ(out, 1);
  ASSERT_TRUE(ring.TryPop(&out));
  EXPECT_EQ(out, 2);
  EXPECT_FALSE(ring.TryPop(&out));
}

TEST(MpscRingTest, WaitForItemReturnsOnClose) {
  MpscRing<int> ring(8);
  ring.AssertConsumer();  // this test body is the one consumer
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ring.Close();
  });
  ring.WaitForItem();  // must not hang: wakes on Close
  EXPECT_TRUE(ring.closed());
  closer.join();
}

TEST(MpscRingTest, WaitForItemUntilTimesOutOnEmptyRing) {
  MpscRing<int> ring(8);
  ring.AssertConsumer();  // this test body is the one consumer
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(10);
  EXPECT_FALSE(ring.WaitForItemUntil(deadline));
  EXPECT_GE(std::chrono::steady_clock::now(), deadline);
}

TEST(MpscRingTest, WaitForItemUntilWakesOnPush) {
  MpscRing<int> ring(8);
  ring.AssertConsumer();  // this test body is the one consumer
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_TRUE(ring.TryPush(7));
  });
  // Generous deadline: the wake must come from the push, not expiry.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  EXPECT_TRUE(ring.WaitForItemUntil(deadline));
  int out = -1;
  EXPECT_TRUE(ring.TryPop(&out));
  EXPECT_EQ(out, 7);
  producer.join();
}

// Stress suites below are sized to finish quickly yet give TSan real
// interleavings; items encode (producer, sequence) so the consumer can
// assert per-producer FIFO, which the Vyukov protocol guarantees.

TEST(MpscRingStressTest, ConcurrentProducersAllItemsArriveInProducerOrder) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 5000;
  MpscRing<uint64_t> ring(256);
  ring.AssertConsumer();  // this test body is the one consumer

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ring, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const uint64_t item =
            (static_cast<uint64_t>(p) << 32) | static_cast<uint64_t>(i);
        ASSERT_TRUE(ring.Push(item));  // blocking: rides the park path
      }
    });
  }

  std::vector<int> next_seq(kProducers, 0);
  int received = 0;
  while (received < kProducers * kPerProducer) {
    uint64_t item = 0;
    if (!ring.TryPop(&item)) {
      ring.WaitForItem();
      continue;
    }
    const int p = static_cast<int>(item >> 32);
    const int seq = static_cast<int>(item & 0xffffffffu);
    ASSERT_EQ(seq, next_seq[p]) << "producer " << p << " reordered";
    next_seq[p] = seq + 1;
    ++received;
  }
  for (auto& t : producers) t.join();
  uint64_t item = 0;
  EXPECT_FALSE(ring.TryPop(&item));
}

TEST(MpscRingStressTest, TinyRingForcesWrapAroundUnderContention) {
  // Capacity 2 with 3 producers keeps the ring permanently full: every
  // push exercises the full/park path and every slot is reused
  // thousands of times.
  constexpr int kProducers = 3;
  constexpr int kPerProducer = 2000;
  MpscRing<uint64_t> ring(2);
  ring.AssertConsumer();  // this test body is the one consumer

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ring, p] {
      for (int i = 0; i < kPerProducer; ++i)
        ASSERT_TRUE(
            ring.Push((static_cast<uint64_t>(p) << 32) |
                      static_cast<uint64_t>(i)));
    });
  }

  std::vector<int> next_seq(kProducers, 0);
  int received = 0;
  while (received < kProducers * kPerProducer) {
    uint64_t item = 0;
    if (!ring.TryPop(&item)) {
      ring.WaitForItem();
      continue;
    }
    const int p = static_cast<int>(item >> 32);
    ASSERT_EQ(static_cast<int>(item & 0xffffffffu), next_seq[p]++);
    ++received;
  }
  for (auto& t : producers) t.join();
}

TEST(MpscRingStressTest, ProducersRacingCloseNeverLoseAcceptedItems) {
  // Producers push until Close fails their push; whatever Push accepted
  // must come out of the drain. Accounting: accepted pushes counted per
  // producer, drained items counted by the consumer, totals must match.
  constexpr int kProducers = 4;
  MpscRing<uint64_t> ring(64);
  std::atomic<uint64_t> accepted{0};
  std::atomic<bool> closed_seen{false};

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&] {
      for (uint64_t i = 0; !closed_seen.load(std::memory_order_acquire);
           ++i) {
        if (ring.Push(i))
          accepted.fetch_add(1, std::memory_order_relaxed);
        else
          break;  // closed
      }
    });
  }

  // The consumer exits only once every producer has JOINED (not merely
  // once the ring closed): a producer whose push won its slot just as
  // Close landed may publish the payload a beat later, and the accepted
  // count must still match the drain. (The serving layer avoids this
  // edge by contract — no submissions concurrent with destruction.)
  std::atomic<bool> producers_done{false};
  uint64_t drained = 0;
  std::thread consumer([&] {
    ring.AssertConsumer();  // this lambda is the one consumer
    uint64_t item = 0;
    for (;;) {
      if (ring.TryPop(&item)) {
        ++drained;
        continue;
      }
      if (producers_done.load(std::memory_order_acquire)) {
        while (ring.TryPop(&item)) ++drained;
        return;
      }
      if (ring.closed())
        std::this_thread::yield();  // closed: WaitForItem would not park
      else
        ring.WaitForItem();
    }
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ring.Close();
  closed_seen.store(true, std::memory_order_release);
  for (auto& t : producers) t.join();
  producers_done.store(true, std::memory_order_release);
  consumer.join();

  EXPECT_EQ(drained, accepted.load());
  // The consumer thread has exited; this thread takes over the role.
  ring.AssertConsumer();
  uint64_t item = 0;
  EXPECT_FALSE(ring.TryPop(&item));
}

}  // namespace
}  // namespace lmkg::util
