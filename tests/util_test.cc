#include <gtest/gtest.h>
#include <stdlib.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "util/atomic_file.h"
#include "util/check.h"
#include "util/crc32.h"
#include "util/flags.h"
#include "util/histogram.h"
#include "util/math.h"
#include "util/mutex.h"
#include "util/random.h"
#include "util/strings.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace lmkg::util {
namespace {

// --- check ------------------------------------------------------------------

TEST(CheckTest, PassingCheckDoesNothing) {
  LMKG_CHECK(true) << "never printed";
  LMKG_CHECK_EQ(1, 1);
  LMKG_CHECK_LT(1, 2);
  LMKG_CHECK_GE(2, 2);
}

TEST(CheckDeathTest, FailingCheckAborts) {
  EXPECT_DEATH(LMKG_CHECK(false) << "boom", "LMKG_CHECK failed");
  EXPECT_DEATH(LMKG_CHECK_EQ(1, 2), "1 vs 2");
}

// --- random -----------------------------------------------------------------

TEST(RandomTest, DeterministicForSameSeed) {
  Pcg32 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RandomTest, DifferentSeedsDiffer) {
  Pcg32 a(123), b(124);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.Next() == b.Next()) ++same;
  EXPECT_LT(same, 5);
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Pcg32 rng(7);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, UniformIntBounds) {
  Pcg32 rng(7);
  std::set<uint32_t> seen;
  for (int i = 0; i < 1000; ++i) {
    uint32_t v = rng.UniformInt(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all values hit in 1000 draws
}

TEST(RandomTest, UniformIntIsRoughlyUniform) {
  Pcg32 rng(11);
  std::vector<int> counts(8, 0);
  const int n = 80000;
  for (int i = 0; i < n; ++i) ++counts[rng.UniformInt(8)];
  for (int c : counts) {
    EXPECT_GT(c, n / 8 * 0.9);
    EXPECT_LT(c, n / 8 * 1.1);
  }
}

TEST(RandomTest, UniformInt64Range) {
  Pcg32 rng(5);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt64(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RandomTest, GaussianMoments) {
  Pcg32 rng(13);
  double sum = 0.0, sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RandomTest, BernoulliFrequency) {
  Pcg32 rng(17);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i)
    if (rng.Bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RandomTest, ShufflePreservesElements) {
  Pcg32 rng(19);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> shuffled = v;
  rng.Shuffle(&shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(ZipfTest, PmfSumsToOneAndDecreases) {
  ZipfDistribution zipf(100, 1.1);
  double sum = 0.0;
  for (size_t k = 0; k < 100; ++k) sum += zipf.Pmf(k);
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_GT(zipf.Pmf(0), zipf.Pmf(1));
  EXPECT_GT(zipf.Pmf(1), zipf.Pmf(50));
}

TEST(ZipfTest, SampleMatchesPmf) {
  ZipfDistribution zipf(10, 1.0);
  Pcg32 rng(23);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[zipf.Sample(rng)];
  for (size_t k = 0; k < 10; ++k)
    EXPECT_NEAR(static_cast<double>(counts[k]) / n, zipf.Pmf(k), 0.01);
}

TEST(DiscreteDistributionTest, RespectsWeights) {
  DiscreteDistribution dist({1.0, 0.0, 3.0});
  Pcg32 rng(29);
  std::vector<int> counts(3, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[dist.Sample(rng)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(DiscreteDistributionDeathTest, AllZeroWeightsAbort) {
  EXPECT_DEATH(DiscreteDistribution({0.0, 0.0}), "all weights zero");
}

// --- math -------------------------------------------------------------------

TEST(MathTest, QErrorBasics) {
  EXPECT_DOUBLE_EQ(QError(10, 10), 1.0);
  EXPECT_DOUBLE_EQ(QError(20, 10), 2.0);
  EXPECT_DOUBLE_EQ(QError(10, 20), 2.0);
  // Floored at 1 on both sides (empty results do not divide by zero).
  EXPECT_DOUBLE_EQ(QError(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(QError(0.5, 5), 5.0);
}

TEST(MathTest, Log2Ceil) {
  EXPECT_EQ(Log2Ceil(1), 0);
  EXPECT_EQ(Log2Ceil(2), 1);
  EXPECT_EQ(Log2Ceil(3), 2);
  EXPECT_EQ(Log2Ceil(4), 2);
  EXPECT_EQ(Log2Ceil(5), 3);
  EXPECT_EQ(Log2Ceil(1024), 10);
  EXPECT_EQ(Log2Ceil(1025), 11);
}

class BinaryBitsTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BinaryBitsTest, EncodingFitsAllIdsAndReservesZero) {
  uint64_t domain = GetParam();
  int bits = BinaryEncodingBits(domain);
  // Every id in [1, domain] must fit.
  EXPECT_LT(domain, (1ULL << bits));
  // The paper's formula: ceil(log2 d) + 1.
  if (domain > 1) {
    EXPECT_EQ(bits, Log2Ceil(domain) + 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Domains, BinaryBitsTest,
                         ::testing::Values(1, 2, 3, 4, 7, 8, 15, 16, 100,
                                           171, 1000, 76000, 12000000));

TEST(MathTest, Percentile) {
  std::vector<double> v = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(Percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 50), 3.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100), 5.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 25), 2.0);
}

TEST(MathTest, QErrorStats) {
  QErrorStats stats = QErrorStats::Compute({1, 2, 4, 8});
  EXPECT_DOUBLE_EQ(stats.mean, 3.75);
  EXPECT_DOUBLE_EQ(stats.max, 8.0);
  EXPECT_DOUBLE_EQ(stats.median, 3.0);
  EXPECT_NEAR(stats.geometric_mean, std::pow(64.0, 0.25), 1e-9);
  EXPECT_EQ(stats.count, 4u);
}

TEST(MathTest, QErrorStatsEmpty) {
  QErrorStats stats = QErrorStats::Compute({});
  EXPECT_EQ(stats.count, 0u);
  EXPECT_DOUBLE_EQ(stats.mean, 0.0);
}

TEST(MathTest, ScalerRoundTrip) {
  LogMinMaxScaler scaler;
  scaler.Fit({1, 10, 100, 1000});
  for (double c : {1.0, 5.0, 42.0, 999.0, 1000.0}) {
    double y = scaler.Scale(c);
    EXPECT_GE(y, 0.0);
    EXPECT_LE(y, 1.0);
    EXPECT_NEAR(scaler.Unscale(y), c, c * 1e-6);
  }
}

TEST(MathTest, ScalerClampsOutOfRange) {
  LogMinMaxScaler scaler;
  scaler.Fit({10, 100});
  EXPECT_DOUBLE_EQ(scaler.Scale(1), 0.0);
  EXPECT_DOUBLE_EQ(scaler.Scale(100000), 1.0);
  EXPECT_NEAR(scaler.Unscale(0.0), 10.0, 1e-6);
  EXPECT_NEAR(scaler.Unscale(1.0), 100.0, 1e-4);
}

class BucketTest : public ::testing::TestWithParam<int> {};

TEST_P(BucketTest, BoundariesAreExact) {
  int bucket = GetParam();
  double lo = BucketLowerBound(bucket);
  EXPECT_EQ(ResultSizeBucket(lo), bucket);
  EXPECT_EQ(ResultSizeBucket(lo * 4.999), bucket);
  if (bucket > 0) {
    EXPECT_EQ(ResultSizeBucket(lo - 0.5), bucket - 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Buckets, BucketTest, ::testing::Range(0, 10));

// --- strings ----------------------------------------------------------------

TEST(StringsTest, Split) {
  EXPECT_EQ(Split("a,b,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,c", ','),
            (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split("a,,c", ',', /*skip_empty=*/true),
            (std::vector<std::string>{"a", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(StringsTest, SplitWhitespace) {
  EXPECT_EQ(SplitWhitespace("  a \t b\nc "),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(SplitWhitespace("   ").empty());
}

TEST(StringsTest, JoinTrimPrefixes) {
  EXPECT_EQ(Join({"a", "b"}, ", "), "a, b");
  EXPECT_EQ(Trim("  x y  "), "x y");
  EXPECT_TRUE(StartsWith("hello", "he"));
  EXPECT_FALSE(StartsWith("he", "hello"));
  EXPECT_TRUE(EndsWith("hello", "lo"));
}

TEST(StringsTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(StrFormat("%.2f", 1.5), "1.50");
}

TEST(StringsTest, HumanBytes) {
  EXPECT_EQ(HumanBytes(512), "512.0 B");
  EXPECT_EQ(HumanBytes(4 << 20), "4.0 MB");
}

// --- table ------------------------------------------------------------------

TEST(TableTest, PrintsAlignedRows) {
  TablePrinter table("t");
  table.SetHeader({"a", "bbb"});
  table.AddRow({"1", "2"});
  table.AddRow("row", {1.0, 2.5});
  std::ostringstream os;
  table.Print(os);
  std::string out = os.str();
  EXPECT_NE(out.find("== t =="), std::string::npos);
  EXPECT_NE(out.find("bbb"), std::string::npos);
  EXPECT_NE(out.find("row"), std::string::npos);
  EXPECT_EQ(table.num_rows(), 2u);
}

TEST(TableTest, Csv) {
  TablePrinter table;
  table.SetHeader({"x", "y"});
  table.AddRow({"1", "2"});
  std::ostringstream os;
  table.PrintCsv(os);
  EXPECT_EQ(os.str(), "x,y\n1,2\n");
}

TEST(TableTest, FormatValue) {
  EXPECT_EQ(FormatValue(1.0), "1");
  EXPECT_EQ(FormatValue(2.5), "2.500");
  EXPECT_EQ(FormatValue(1e7), "1.00e+07");
}

// --- flags ------------------------------------------------------------------

TEST(FlagsTest, ParsesAllForms) {
  const char* argv[] = {"prog", "--a=1", "--b", "2",
                        "pos",  "--c",   "--d=x y"};
  Flags flags(7, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetInt("a", 0), 1);
  EXPECT_EQ(flags.GetInt("b", 0), 2);
  EXPECT_TRUE(flags.GetBool("c", false));
  EXPECT_EQ(flags.GetString("d", ""), "x y");
  EXPECT_EQ(flags.GetInt("missing", 9), 9);
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "pos");
}

TEST(FlagsTest, DoubleAndDefaults) {
  const char* argv[] = {"prog", "--x=2.5"};
  Flags flags(2, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(flags.GetDouble("x", 0), 2.5);
  EXPECT_DOUBLE_EQ(flags.GetDouble("y", 1.5), 1.5);
  EXPECT_FALSE(flags.Has("y"));
}

// --- thread pool ------------------------------------------------------------

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> touched(1000);
  pool.ParallelFor(touched.size(), 1, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i)
      touched[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (const auto& t : touched) EXPECT_EQ(t.load(), 1);
}

TEST(ThreadPoolTest, ZeroThreadPoolRunsInline) {
  ThreadPool pool(0);
  size_t total = 0;
  pool.ParallelFor(17, 4, [&](size_t begin, size_t end) {
    total += end - begin;  // inline: no synchronization needed
  });
  EXPECT_EQ(total, 17u);
}

TEST(ThreadPoolTest, NestingAcrossDifferentPoolsIsAllowed) {
  // Only SAME-pool nesting deadlocks; a body may submit to another pool
  // (independent locks), and the debug guard must not trip on it.
  ThreadPool outer(2);
  ThreadPool inner(0);  // inline — runs on the outer pool's threads
  std::atomic<size_t> total{0};
  outer.ParallelFor(8, 1, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i)
      inner.ParallelFor(3, 1, [&](size_t b, size_t e) {
        total.fetch_add(e - b, std::memory_order_relaxed);
      });
  });
  EXPECT_EQ(total.load(), 24u);
}

#ifndef NDEBUG
// The debug reentrancy guard turns the nested-ParallelFor deadlock into
// an immediate LMKG_CHECK failure. Debug builds only (the release build
// compiles the guard out).
TEST(ThreadPoolDeathTest, NestedParallelForAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        ThreadPool pool(2);
        pool.ParallelFor(8, 1, [&](size_t, size_t) {
          pool.ParallelFor(2, 1, [](size_t, size_t) {});
        });
      },
      "not reentrant");
}

TEST(ThreadPoolDeathTest, NestedInlinePathAlsoAborts) {
  // Even a nested call that would run inline (tiny n) violates the
  // contract and must fail fast — whether it runs inline depends on the
  // pool size, not the call site.
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        ThreadPool pool(2);
        pool.ParallelFor(8, 1, [&](size_t, size_t) {
          pool.ParallelFor(1, 1, [](size_t, size_t) {});
        });
      },
      "not reentrant");
}
#endif  // NDEBUG

// --- latency histogram ------------------------------------------------------

TEST(LatencyHistogramTest, EmptyHistogramReportsZeros) {
  LatencyHistogram h;
  EXPECT_EQ(h.TotalCount(), 0u);
  EXPECT_DOUBLE_EQ(h.PercentileUs(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.MeanUs(), 0.0);
  EXPECT_DOUBLE_EQ(h.MaxUs(), 0.0);
}

TEST(LatencyHistogramTest, PercentilesWithinBucketResolution) {
  LatencyHistogram h;
  // 1000 samples spread uniformly over [10us, 1000us): every reported
  // percentile must land within one geometric bucket (ratio 10^(1/12)
  // ~ 1.21) of the true value.
  for (int i = 0; i < 1000; ++i) h.Record(10.0 + i * 0.99);
  EXPECT_EQ(h.TotalCount(), 1000u);
  const double ratio = std::pow(10.0, 1.0 / 12.0);
  struct Case {
    double p;
    double want;
  } cases[] = {{0.50, 505.0}, {0.95, 950.5}, {0.99, 990.1}};
  for (const auto& c : cases) {
    const double got = h.PercentileUs(c.p);
    EXPECT_GT(got, c.want / (ratio * ratio)) << "p=" << c.p;
    EXPECT_LT(got, c.want * ratio * ratio) << "p=" << c.p;
  }
  EXPECT_NEAR(h.MeanUs(), 504.5, 1.0);
  EXPECT_NEAR(h.MaxUs(), 999.01, 0.01);
}

TEST(LatencyHistogramTest, SubMicrosecondPercentilesResolve) {
  // The cached-hit path completes in tens to hundreds of nanoseconds; a
  // histogram floored at 1us would pin every such p50 at the bottom
  // bucket's midpoint. The sub-microsecond decades must resolve these
  // samples with the same one-bucket guarantee as the rest of the range.
  const double ratio = std::pow(10.0, 1.0 / 12.0);
  for (const double us : {0.05, 0.2, 0.8}) {
    LatencyHistogram h;
    for (int i = 0; i < 100; ++i) h.Record(us);
    const double got = h.PercentileUs(0.5);
    EXPECT_GT(got, us / ratio) << "us=" << us;
    EXPECT_LT(got, us * ratio) << "us=" << us;
  }
  // Two clusters a decade apart below 1us must not collapse into one
  // bucket: the p25 sits in the fast cluster, the p75 in the slow one.
  LatencyHistogram h;
  for (int i = 0; i < 100; ++i) h.Record(0.05);
  for (int i = 0; i < 100; ++i) h.Record(0.5);
  EXPECT_LT(h.PercentileUs(0.25), 0.1);
  EXPECT_GT(h.PercentileUs(0.75), 0.3);
  EXPECT_NEAR(h.MeanUs(), 0.275, 0.01);
}

TEST(LatencyHistogramTest, OutOfRangeSamplesClampToEdgeBuckets) {
  LatencyHistogram h;
  h.Record(0.001);   // 1 nanosecond (below the 10ns floor) -> bucket 0
  h.Record(1e9);     // 1000 seconds -> last bucket
  EXPECT_EQ(h.TotalCount(), 2u);
  EXPECT_LT(h.PercentileUs(0.0), 0.02);
  EXPECT_GT(h.PercentileUs(1.0), 1e7);
  EXPECT_NEAR(h.MaxUs(), 1e9, 1.0);
}

TEST(LatencyHistogramTest, ConcurrentRecordsAllLand) {
  LatencyHistogram h;
  ThreadPool pool(4);
  pool.ParallelFor(8, 1, [&](size_t begin, size_t end) {
    for (size_t t = begin; t < end; ++t)
      for (int i = 0; i < 10000; ++i)
        h.Record(1.0 + static_cast<double>(t));
  });
  EXPECT_EQ(h.TotalCount(), 80000u);
}

TEST(LatencyHistogramTest, ResetClearsEverything) {
  LatencyHistogram h;
  h.Record(42.0);
  h.Reset();
  EXPECT_EQ(h.TotalCount(), 0u);
  EXPECT_DOUBLE_EQ(h.MaxUs(), 0.0);
}

TEST(LatencyHistogramTest, MergeEqualsSingleHistogramOfBothStreams) {
  // The defining property of MergeFrom: merging B into A must report
  // exactly what one histogram that recorded both streams reports —
  // count, every percentile, mean, and max.
  LatencyHistogram a, b, both;
  for (int i = 0; i < 300; ++i) {
    const double fast = 5.0 + i * 0.1;    // [5us, 35us)
    const double slow = 200.0 + i * 2.0;  // [200us, 800us)
    a.Record(fast);
    both.Record(fast);
    b.Record(slow);
    both.Record(slow);
  }
  a.MergeFrom(b);
  EXPECT_EQ(a.TotalCount(), both.TotalCount());
  for (const double p : {0.0, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0})
    EXPECT_DOUBLE_EQ(a.PercentileUs(p), both.PercentileUs(p)) << "p=" << p;
  EXPECT_DOUBLE_EQ(a.MeanUs(), both.MeanUs());
  EXPECT_DOUBLE_EQ(a.MaxUs(), both.MaxUs());
}

TEST(LatencyHistogramTest, MergeAtBucketBoundariesPreservesBucketing) {
  // Samples sitting exactly on geometric bucket edges (powers of the
  // ratio 10^(1/12)) are the worst case for any merge that re-derived
  // bucket indices: a sample must land in the SAME bucket whether it
  // was recorded directly or arrived via MergeFrom. Percentile equality
  // at every probe is only possible if the bucket-wise addition
  // preserved each sample's bucket exactly.
  const double ratio = std::pow(10.0, 1.0 / 12.0);
  LatencyHistogram merged, direct;
  double edge = 0.01;  // the 10ns lower edge of bucket 0
  for (int i = 0; i < 120; ++i, edge *= ratio) {
    LatencyHistogram piece;
    piece.Record(edge);
    piece.Record(edge * 1.0000001);  // just inside the same bucket
    direct.Record(edge);
    direct.Record(edge * 1.0000001);
    merged.MergeFrom(piece);
  }
  EXPECT_EQ(merged.TotalCount(), direct.TotalCount());
  for (double p = 0.0; p <= 1.0; p += 0.01)
    EXPECT_DOUBLE_EQ(merged.PercentileUs(p), direct.PercentileUs(p))
        << "p=" << p;
  EXPECT_DOUBLE_EQ(merged.MaxUs(), direct.MaxUs());
}

TEST(LatencyHistogramTest, MergeEdgeCases) {
  // Empty-into-empty, empty-into-full, full-into-empty, and the
  // clamped edge buckets (sub-10ns floor, >80s ceiling).
  LatencyHistogram empty_dst, full;
  full.Record(0.001);  // below the 10ns floor -> bucket 0
  full.Record(1e9);    // 1000 seconds -> last bucket
  LatencyHistogram still_empty;
  empty_dst.MergeFrom(still_empty);
  EXPECT_EQ(empty_dst.TotalCount(), 0u);
  EXPECT_DOUBLE_EQ(empty_dst.PercentileUs(0.5), 0.0);
  empty_dst.MergeFrom(full);
  EXPECT_EQ(empty_dst.TotalCount(), 2u);
  EXPECT_LT(empty_dst.PercentileUs(0.0), 0.02);
  EXPECT_GT(empty_dst.PercentileUs(1.0), 1e7);
  EXPECT_NEAR(empty_dst.MaxUs(), 1e9, 1.0);
  // Merging into a populated destination accumulates, never replaces.
  LatencyHistogram more;
  more.Record(1e9);
  empty_dst.MergeFrom(more);
  EXPECT_EQ(empty_dst.TotalCount(), 3u);
  EXPECT_NEAR(empty_dst.MaxUs(), 1e9, 1.0);
}

TEST(LatencyHistogramTest, MergeWhileSourceRecordsStaysSane) {
  // The shard-rollup scenario: MergeFrom snapshots a histogram that
  // other threads keep recording into (TSan covers the access safety).
  // The merged view may lag, but every probe must stay inside the
  // sampled range with monotone percentiles — the total-before-buckets
  // read order in MergeFrom keeps merged-total <= merged-bucket-sum, so
  // a rank never walks off the buckets into the MaxUs fallback.
  LatencyHistogram source;
  std::atomic<bool> stop{false};
  std::thread recorder([&] {
    uint64_t i = 0;
    while (!stop.load(std::memory_order_relaxed))
      source.Record(1.0 + static_cast<double>(i++ % 100));
  });
  for (int round = 0; round < 200; ++round) {
    LatencyHistogram rollup;
    rollup.MergeFrom(source);
    if (rollup.TotalCount() == 0) continue;
    const double p50 = rollup.PercentileUs(0.50);
    const double p99 = rollup.PercentileUs(0.99);
    const double p100 = rollup.PercentileUs(1.0);
    EXPECT_GT(p50, 0.5);
    EXPECT_LE(p50, p99);
    EXPECT_LE(p99, p100 * 1.3);  // within one bucket of the top
    EXPECT_LT(p100, 150.0);      // all samples lie in [1us, 101us)
  }
  stop.store(true, std::memory_order_relaxed);
  recorder.join();
}

// --- crc32 -------------------------------------------------------------------

TEST(Crc32Test, KnownAnswer) {
  // The CRC-32/ISO-HDLC check value every implementation must produce.
  const char data[] = "123456789";
  EXPECT_EQ(Crc32(data, 9), 0xCBF43926u);
  EXPECT_EQ(Crc32(data, 0), 0u);
}

TEST(Crc32Test, ChainingMatchesOneShot) {
  const char data[] = "the quick brown fox jumps over the lazy dog";
  const size_t n = sizeof(data) - 1;
  const uint32_t whole = Crc32(data, n);
  for (size_t split : {size_t{1}, n / 3, n / 2, n - 1}) {
    const uint32_t head = Crc32(data, split);
    EXPECT_EQ(Crc32(data + split, n - split, head), whole) << split;
  }
}

TEST(Crc32Test, DetectsSingleBitFlip) {
  std::string data(256, '\0');
  for (size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<char>(i * 7);
  const uint32_t clean = Crc32(data.data(), data.size());
  data[100] ^= 0x10;
  EXPECT_NE(Crc32(data.data(), data.size()), clean);
}

// --- atomic file writes ------------------------------------------------------

class AtomicFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/lmkg_atomic_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
    path_ = dir_ + "/target.bin";
  }
  void TearDown() override {
    ::unlink(path_.c_str());
    ::rmdir(dir_.c_str());
  }

  std::string dir_;
  std::string path_;
};

TEST_F(AtomicFileTest, WriteThenReadRoundTrips) {
  std::string contents = "hello\0world";
  contents.resize(11);  // embedded NUL survives
  ASSERT_TRUE(WriteFileAtomic(path_, contents).ok());
  std::string read_back;
  ASSERT_TRUE(ReadFile(path_, &read_back).ok());
  EXPECT_EQ(read_back, contents);
}

TEST_F(AtomicFileTest, ReplacesExistingContents) {
  ASSERT_TRUE(WriteFileAtomic(path_, "old old old").ok());
  ASSERT_TRUE(WriteFileAtomic(path_, "new").ok());
  std::string read_back;
  ASSERT_TRUE(ReadFile(path_, &read_back).ok());
  EXPECT_EQ(read_back, "new");
}

TEST_F(AtomicFileTest, SerializeCallbackWrites) {
  ASSERT_TRUE(WriteFileAtomic(path_, [](std::ostream& out) {
                out << "streamed " << 42;
                return Status::Ok();
              }).ok());
  std::string read_back;
  ASSERT_TRUE(ReadFile(path_, &read_back).ok());
  EXPECT_EQ(read_back, "streamed 42");
}

TEST_F(AtomicFileTest, FailedSerializeLeavesTargetUntouched) {
  ASSERT_TRUE(WriteFileAtomic(path_, "precious").ok());
  Status status = WriteFileAtomic(path_, [](std::ostream&) {
    return Status::Error("serialization exploded");
  });
  EXPECT_FALSE(status.ok());
  std::string read_back;
  ASSERT_TRUE(ReadFile(path_, &read_back).ok());
  EXPECT_EQ(read_back, "precious");  // the old bytes, not a torn file
}

TEST_F(AtomicFileTest, UnwritableDirectoryFailsWithoutTarget) {
  Status status = WriteFileAtomic(dir_ + "/no/such/dir/f", "x");
  EXPECT_FALSE(status.ok());
  std::string read_back;
  EXPECT_FALSE(ReadFile(dir_ + "/no/such/dir/f", &read_back).ok());
}

TEST_F(AtomicFileTest, ReadMissingFileFails) {
  std::string read_back;
  EXPECT_FALSE(ReadFile(path_, &read_back).ok());
}

// --- mutex / condvar wrappers ------------------------------------------------

TEST(MutexTest, TryLockContendsAcrossThreadsAndAdoptGuardReleases) {
  Mutex mu;
  bool acquired = false;
  const auto probe = [&] {
    // Probe from ANOTHER thread: try_lock on a mutex the calling thread
    // already holds is undefined, so contention must be cross-thread.
    if (mu.TryLock()) {
      acquired = true;
      mu.Unlock();
    } else {
      acquired = false;
    }
  };
  {
    ASSERT_TRUE(mu.TryLock());
    MutexLock lock(&mu, kAdoptLock);  // the try-lock adopt idiom
    std::thread t(probe);
    t.join();
    EXPECT_FALSE(acquired);  // held by the adopted guard
  }
  std::thread t(probe);
  t.join();
  EXPECT_TRUE(acquired);  // the guard's destructor released it
}

TEST(MutexTest, MidScopeUnlockRelockReleasesExactlyOnce) {
  Mutex mu;
  bool acquired = false;
  const auto probe = [&] {
    if (mu.TryLock()) {
      acquired = true;
      mu.Unlock();
    } else {
      acquired = false;
    }
  };
  {
    MutexLock lock(&mu);
    lock.Unlock();
    std::thread t1(probe);
    t1.join();
    EXPECT_TRUE(acquired);  // free during the unlocked window
    lock.Lock();
    // Destructor must release the reacquired lock exactly once.
  }
  std::thread t2(probe);
  t2.join();
  EXPECT_TRUE(acquired);
}

TEST(CondVarTest, WaitWakesOnNotifyWithManualPredicateLoop) {
  Mutex mu;
  CondVar cv;
  bool ready = false;  // mu-guarded by convention (locals are unchecked)
  std::thread signaler([&] {
    MutexLock lock(&mu);
    ready = true;
    cv.NotifyOne();
  });
  {
    MutexLock lock(&mu);
    // The manual loop around the plain Wait — the pattern guarded
    // predicates must use (see util/mutex.h on the lambda restriction).
    while (!ready) cv.Wait(mu);
  }
  signaler.join();
}

TEST(CondVarTest, WaitForTimesOutWithPredicateStillFalse) {
  Mutex mu;
  CondVar cv;
  MutexLock lock(&mu);
  EXPECT_FALSE(
      cv.WaitFor(mu, std::chrono::milliseconds(5), [] { return false; }));
}

TEST(CondVarTest, WaitUntilReturnsOnceAtomicPredicateHolds) {
  Mutex mu;
  CondVar cv;
  std::atomic<bool> flag{false};
  std::thread signaler([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    flag.store(true, std::memory_order_release);
    MutexLock lock(&mu);
    cv.NotifyAll();
  });
  {
    MutexLock lock(&mu);
    // Generous deadline: the return must come from the notify.
    EXPECT_TRUE(cv.WaitUntil(
        mu, std::chrono::steady_clock::now() + std::chrono::seconds(10),
        [&] { return flag.load(std::memory_order_acquire); }));
  }
  signaler.join();
}

}  // namespace
}  // namespace lmkg::util
